//! The persistent streaming service: long-lived admission → sharded
//! workers → submission-order sequencer.
//!
//! ## Execution model
//!
//! The one-shot [`crate::Scheduler`] is barrier-y: it reads a whole
//! batch, partitions it, answers, and exits — sustained traffic is
//! bounded by the slowest group per batch and by the single cache lock.
//! The service replaces the barrier with a pipeline:
//!
//! 1. **Admission** (the caller's thread) pulls [`StreamItem`]s as they
//!    arrive — no batch boundary — stamps each with a submission sequence
//!    number, and dispatches it to the shard its preparation fingerprint
//!    routes to ([`crate::shard::shard_of`]).
//! 2. **Shard workers** (one OS thread per shard) drain their bounded
//!    queue in arrival order and execute requests against their shard of
//!    the [`crate::shard::ShardedCache`] (same three reuse tiers as the
//!    one-shot scheduler: result memo, prepared-engine reuse, certified
//!    bracket continuation).
//! 3. The **sequencer** (one thread) re-orders completed responses by
//!    sequence number and hands them to the caller's sink strictly in
//!    submission order, regardless of how workers interleave.
//!
//! ## Backpressure
//!
//! Every queue is bounded. A request whose shard queue is full is
//! answered immediately with a typed [`StreamOutcome::Overloaded`] —
//! never buffered without bound. Total in-flight work (dispatched but not
//! yet emitted) is capped by an admission credit semaphore, so a slow
//! request cannot make the sequencer's reorder buffer grow with the
//! stream length: once the cap is reached, admission itself blocks and
//! stops consuming input (the OS pipe applies backpressure to the
//! producer).
//!
//! Two further shed paths layer on the fixed queue bound:
//!
//! * **Adaptive shed** ([`ServiceOptions::shed_target_p99`]): when set,
//!   the depth a shard queue may reach before admission sheds is scaled
//!   down from `queue_capacity` in proportion to how far the live p99
//!   service latency (maintained by the workers in a shared
//!   [`LatencyHistogram`]) exceeds the target — under load the queue
//!   admits only as much work as it can serve near the target latency.
//! * **Caller shed** ([`StreamItem::Shed`]): transports enforcing their
//!   own admission policy (e.g. the socket front end's per-client
//!   in-flight caps, DESIGN.md §15) hand the item back pre-shed; it
//!   flows through the sequencer so the typed overload line still lands
//!   in submission order.
//!
//! ## Determinism contract
//!
//! A fingerprint lives on exactly one shard and its shard's worker
//! processes the queue FIFO, so the cache-state sequence any fingerprint
//! moves through — and therefore every deterministic response field — is
//! a function of the submission-ordered request stream alone: not of the
//! shard count, the rayon pool width, or worker interleaving. Overload
//! responses are the one timing-dependent outcome (they depend on queue
//! occupancy); streams served within the queue bounds are bitwise
//! reproducible, which `tests/determinism.rs` pins across pools {1, 4} ×
//! shard counts {1, 4} and snapshot cold/warm starts.

use crate::cache::{params_key, prep_engine_of, prep_hash, CacheEntry, MemoEntry, Prepared};
use crate::request::{InstancePayload, RequestKind, ServeRequest};
use crate::scheduler::{ServeResponse, ServeResult, ServeStats};
use crate::shard::ShardedCache;
use crate::telemetry::{LatencyHistogram, TierCounters};
use parking_lot::Mutex;
use psdp_core::{DecisionOptions, MixedOptions, MixedSolver, Solver};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServiceOptions {
    /// Cache shards (and shard worker threads). `0` is treated as 1.
    pub shards: usize,
    /// Bounded work-queue capacity per shard; a request arriving at a
    /// full queue is answered with [`StreamOutcome::Overloaded`].
    pub queue_capacity: usize,
    /// Cap on items dispatched but not yet emitted by the sequencer
    /// (bounds the reorder buffer). `0` = `shards · queue_capacity + 64`.
    pub max_outstanding: usize,
    /// Master switch for the fingerprint cache (off = every request is
    /// cold, the uncached baseline).
    pub cache_enabled: bool,
    /// Fingerprint capacity per shard (deterministic per-shard LRU).
    pub max_entries_per_shard: usize,
    /// Memoized results kept per fingerprint.
    pub memo_per_entry: usize,
    /// Adaptive shed target: when set, the admissible depth of each
    /// shard queue shrinks below `queue_capacity` in proportion to how
    /// far the live p99 service latency exceeds this target (clamped to
    /// at least 1 so streams always progress). `None` keeps the fixed
    /// queue bound only. Shed decisions are timing-dependent by design —
    /// overloads are the one outcome outside the determinism contract.
    pub shed_target_p99: Option<Duration>,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            shards: 4,
            queue_capacity: 1024,
            max_outstanding: 0,
            cache_enabled: true,
            max_entries_per_shard: 256,
            memo_per_entry: 64,
            shed_target_p99: None,
        }
    }
}

/// One admitted stream item: either a request to execute, or a line the
/// caller already rejected (parse failure) that still needs its error
/// emitted in submission order. `C` is caller context carried through the
/// pipeline and handed back with the outcome (e.g. rendering state).
pub enum StreamItem<C> {
    /// Execute this request.
    Execute {
        /// The request.
        request: ServeRequest,
        /// Caller context returned with the outcome.
        ctx: C,
    },
    /// Pass this admission-stage error through the sequencer.
    Reject {
        /// The admission error (e.g. a parse failure).
        error: String,
        /// Caller context returned with the outcome.
        ctx: C,
    },
    /// The caller already decided to shed this request (e.g. a
    /// per-client in-flight cap at the socket front end); emit the typed
    /// overload outcome in submission order without executing anything.
    Shed {
        /// The request id the overload line answers.
        id: String,
        /// Caller context returned with the outcome.
        ctx: C,
    },
}

/// What the sequencer emits for one stream item, in submission order.
pub enum StreamOutcome {
    /// The request executed (the result inside may still be a
    /// per-request error). Boxed: a full response dwarfs the other
    /// variants and the sequencer buffers many outcomes at once.
    Response(Box<ServeResponse>),
    /// Admission rejected the item before execution.
    Rejected {
        /// The admission error.
        error: String,
    },
    /// The request was shed: typed backpressure, the request was **not**
    /// executed and its cache state is untouched. Raised by a full (or
    /// adaptively shrunk) shard queue, or pre-shed by the caller via
    /// [`StreamItem::Shed`].
    Overloaded {
        /// The request id.
        id: String,
        /// The shard whose queue shed the request; `None` when the
        /// caller shed it before routing (per-client cap).
        shard: Option<usize>,
    },
}

/// Aggregate report over one [`Service::run_stream`] call. Same tier and
/// latency schema as the one-shot [`crate::BatchReport`] (E13 vs E15 are
/// comparable row-for-row); all wall-clock fields are stderr-report-only.
#[derive(Debug, Clone, Default)]
pub struct ServiceReport {
    /// Stream items admitted (executed + rejected + overloaded).
    pub requests: usize,
    /// Requests that reached a worker and executed.
    pub executed: usize,
    /// Items rejected at admission (parse failures).
    pub rejected: usize,
    /// Requests shed by backpressure (full shard queue).
    pub overloaded: usize,
    /// Executed requests that ended in an error response.
    pub errors: usize,
    /// Per-tier cache hit counters.
    pub tiers: TierCounters,
    /// Solver preparations performed (engine builds).
    pub prep_builds: usize,
    /// Total live engine evaluations.
    pub engine_evals: usize,
    /// Total trajectory-cache rounds replayed.
    pub replayed: usize,
    /// Per-shard queue-depth high-water marks.
    pub queue_high_water: Vec<usize>,
    /// Service-time (execution only) latency histogram.
    pub service_hist: LatencyHistogram,
    /// Queue-wait (admission → execution start) latency histogram.
    pub queue_hist: LatencyHistogram,
    /// Wall-clock time of the whole stream.
    pub wall: Duration,
}

/// A job on a shard queue.
struct ShardJob<C> {
    seq: u64,
    admitted_at: Instant,
    request: ServeRequest,
    ctx: C,
}

/// What workers/admission hand the sequencer.
struct Sequenced<C> {
    seq: u64,
    ctx: C,
    outcome: StreamOutcome,
    prep_built: bool,
}

/// The long-lived streaming service. Owns the sharded cache, so reuse
/// state (and snapshot warm loads) persists across [`Service::run_stream`]
/// calls.
pub struct Service {
    opts: ServiceOptions,
    cache: ShardedCache,
}

impl Service {
    /// A service with the given options (cache starts cold; see
    /// [`Service::load_snapshot`] for warm starts).
    pub fn new(opts: ServiceOptions) -> Self {
        let shards = opts.shards.max(1);
        Service { opts, cache: ShardedCache::new(shards, opts.max_entries_per_shard) }
    }

    /// Number of fingerprints currently cached across all shards.
    pub fn cached_fingerprints(&self) -> usize {
        self.cache.len()
    }

    /// Number of cache shards (= shard worker threads).
    pub fn shard_count(&self) -> usize {
        self.cache.shard_count()
    }

    /// Serialize the cache's prepared fingerprints (and certified
    /// brackets) into the versioned snapshot format. See
    /// [`crate::snapshot`] for the format and soundness contract.
    pub fn snapshot_string(&self) -> String {
        crate::snapshot::write_snapshot(&self.cache)
    }

    /// Warm-load a snapshot produced by [`Service::snapshot_string`]:
    /// every entry is fully re-verified and its engines are rebuilt
    /// through the ordinary preparation path before insertion. Returns
    /// the number of entries loaded.
    ///
    /// # Errors
    /// [`crate::snapshot::SnapshotError`] on any malformed, corrupted, or
    /// unverifiable content; the cache is left exactly as it was (callers
    /// fall back to a cold start — never a panic).
    pub fn load_snapshot(&mut self, text: &str) -> Result<usize, crate::snapshot::SnapshotError> {
        let entries = crate::snapshot::load_snapshot(text)?;
        let n = entries.len();
        for entry in entries {
            self.cache.insert(entry);
        }
        Ok(n)
    }

    /// Run one request stream to completion: admit `items` as the
    /// iterator yields them, execute across the shard workers, and hand
    /// every outcome to `sink` strictly in submission order. The cache
    /// persists across calls.
    pub fn run_stream<C, I, F>(&mut self, items: I, sink: F) -> ServiceReport
    where
        C: Send,
        I: Iterator<Item = StreamItem<C>>,
        F: FnMut(C, StreamOutcome) + Send,
    {
        let started = Instant::now();
        let shards = self.cache.shard_count();
        let queue_cap = self.opts.queue_capacity.max(1);
        let outstanding = if self.opts.max_outstanding == 0 {
            shards * queue_cap + 64
        } else {
            self.opts.max_outstanding.max(1)
        };
        // Capture the caller's rayon budget so shard workers run solver
        // parallelism at the same width (worker threads do not inherit
        // the caller's pool; tests vary this via `run_with_threads`).
        let pool_width = rayon::current_num_threads();
        let cache_enabled = self.opts.cache_enabled;
        let memo_cap = self.opts.memo_per_entry;
        let shed_target = self.opts.shed_target_p99;
        let cache = &self.cache;

        let depths: Vec<AtomicUsize> = (0..shards).map(|_| AtomicUsize::new(0)).collect();
        let high_water: Vec<AtomicUsize> = (0..shards).map(|_| AtomicUsize::new(0)).collect();
        // Live service-latency histogram feeding the adaptive shed
        // policy: workers record as they finish, admission reads the p99.
        let live_hist = Mutex::new(LatencyHistogram::default());
        let live_hist = &live_hist;

        let mut report = std::thread::scope(|scope| {
            let (results_tx, results_rx) = mpsc::channel::<Sequenced<C>>();
            // Admission credits: one token per in-flight item. `send`
            // blocks when `outstanding` items are unemitted, which stalls
            // admission (bounded memory) without ever deadlocking: items
            // already dispatched complete without admission's help.
            let (credits_tx, credits_rx) = mpsc::sync_channel::<()>(outstanding);

            let mut shard_txs: Vec<mpsc::SyncSender<ShardJob<C>>> = Vec::with_capacity(shards);
            for (shard_idx, (depth, _)) in depths.iter().zip(high_water.iter()).enumerate() {
                let (tx, rx) = mpsc::sync_channel::<ShardJob<C>>(queue_cap);
                shard_txs.push(tx);
                let results_tx = results_tx.clone();
                let _ = shard_idx;
                scope.spawn(move || {
                    worker_loop(
                        rx,
                        results_tx,
                        cache,
                        cache_enabled,
                        memo_cap,
                        pool_width,
                        depth,
                        live_hist,
                    );
                });
            }

            let sequencer = scope.spawn(move || sequencer_loop(results_rx, credits_rx, sink));

            // Admission: the caller's thread.
            for (seq, item) in (0_u64..).zip(items) {
                // Acquire an in-flight credit (blocks at the cap; the
                // receiver is only dropped after this loop ends, so a
                // send failure can only mean the sequencer died — stop
                // admitting).
                if credits_tx.send(()).is_err() {
                    break;
                }
                match item {
                    StreamItem::Reject { error, ctx } => {
                        let _ = results_tx.send(Sequenced {
                            seq,
                            ctx,
                            outcome: StreamOutcome::Rejected { error },
                            prep_built: false,
                        });
                    }
                    StreamItem::Shed { id, ctx } => {
                        let _ = results_tx.send(Sequenced {
                            seq,
                            ctx,
                            outcome: StreamOutcome::Overloaded { id, shard: None },
                            prep_built: false,
                        });
                    }
                    StreamItem::Execute { request, ctx } => {
                        // Routing is O(1): the content hash was computed at
                        // parse time, never by re-serializing the instance.
                        let shard = crate::shard::shard_of(prep_hash(&request), shards);
                        // Adaptive shed: under a latency target, the
                        // admissible depth shrinks with the live p99.
                        let allowed = shed_allowance(shed_target, live_hist, queue_cap);
                        if depths.get(shard).map(|a| a.load(Ordering::SeqCst)).unwrap_or(0)
                            >= allowed
                        {
                            let _ = results_tx.send(Sequenced {
                                seq,
                                ctx,
                                outcome: StreamOutcome::Overloaded {
                                    id: request.id.clone(),
                                    shard: Some(shard),
                                },
                                prep_built: false,
                            });
                            continue;
                        }
                        let job = ShardJob { seq, admitted_at: Instant::now(), request, ctx };
                        match shard_txs.get(shard) {
                            Some(tx) => {
                                // Count the item before handing it over: the
                                // worker decrements on receipt, and a
                                // decrement must never be able to run before
                                // its increment (unsigned counter).
                                let d = depths
                                    .get(shard)
                                    .map(|a| a.fetch_add(1, Ordering::SeqCst).saturating_add(1))
                                    .unwrap_or(0);
                                match tx.try_send(job) {
                                    Ok(()) => {
                                        if let Some(hw) = high_water.get(shard) {
                                            hw.fetch_max(d, Ordering::SeqCst);
                                        }
                                    }
                                    Err(mpsc::TrySendError::Full(job))
                                    | Err(mpsc::TrySendError::Disconnected(job)) => {
                                        if let Some(a) = depths.get(shard) {
                                            a.fetch_sub(1, Ordering::SeqCst);
                                        }
                                        let _ = results_tx.send(Sequenced {
                                            seq,
                                            ctx: job.ctx,
                                            outcome: StreamOutcome::Overloaded {
                                                id: job.request.id.clone(),
                                                shard: Some(shard),
                                            },
                                            prep_built: false,
                                        });
                                    }
                                }
                            }
                            None => {
                                let _ = results_tx.send(Sequenced {
                                    seq,
                                    ctx: job.ctx,
                                    outcome: StreamOutcome::Rejected {
                                        error: "shard routing out of range (internal)".to_string(),
                                    },
                                    prep_built: false,
                                });
                            }
                        }
                    }
                }
            }
            // Close the pipeline: workers drain and exit, then the
            // results channel closes and the sequencer flushes.
            drop(shard_txs);
            drop(results_tx);
            sequencer.join().unwrap_or_default()
        });

        report.queue_high_water = high_water.iter().map(|a| a.load(Ordering::SeqCst)).collect();
        report.wall = started.elapsed();
        report
    }
}

/// How deep a shard queue may grow before admission sheds: the full
/// configured capacity while the live p99 service latency is at or under
/// the target (or no target / no samples yet), shrinking proportionally
/// as the observed p99 exceeds it — clamped to at least 1 so the stream
/// always makes progress.
fn shed_allowance(
    target: Option<Duration>,
    live_hist: &Mutex<LatencyHistogram>,
    queue_cap: usize,
) -> usize {
    let Some(target) = target else {
        return usize::MAX;
    };
    match live_hist.lock().quantile(0.99) {
        Some(p99) if p99 > target && p99.as_nanos() > 0 => {
            let scaled = (queue_cap as u128).saturating_mul(target.as_nanos()) / p99.as_nanos();
            (scaled as usize).clamp(1, queue_cap)
        }
        _ => queue_cap,
    }
}

/// One shard worker: drain the queue in arrival order, execute each
/// request against the shared sharded cache, send sequenced outcomes.
#[allow(clippy::too_many_arguments)]
fn worker_loop<C: Send>(
    rx: mpsc::Receiver<ShardJob<C>>,
    results_tx: mpsc::Sender<Sequenced<C>>,
    cache: &ShardedCache,
    cache_enabled: bool,
    memo_cap: usize,
    pool_width: usize,
    depth: &AtomicUsize,
    live_hist: &Mutex<LatencyHistogram>,
) {
    // Propagate the caller's rayon width into this worker thread. Pool
    // construction is infallible in the shim and cheap either way; on
    // failure run unpooled (concurrency never changes results).
    let pool = rayon::ThreadPoolBuilder::new().num_threads(pool_width.max(1)).build().ok();
    while let Ok(job) = rx.recv() {
        depth.fetch_sub(1, Ordering::SeqCst);
        let started = Instant::now();
        let queue_wait = started.duration_since(job.admitted_at);
        let exec = || execute_request(cache, cache_enabled, memo_cap, &job.request);
        // A panic inside one request (a solver-internal bug) must not
        // kill the worker and starve the whole shard: answer with a
        // typed internal error and keep serving.
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &pool {
            Some(p) => p.install(exec),
            None => exec(),
        }));
        let (result, mut stats, prep_built) = match run {
            Ok(out) => out,
            Err(_) => (
                Err("request execution panicked (internal)".to_string()),
                ServeStats::default(),
                false,
            ),
        };
        stats.queue_wait = queue_wait;
        stats.service = started.elapsed();
        live_hist.lock().record(stats.service);
        let response = ServeResponse { id: job.request.id.clone(), result, stats };
        let _ = results_tx.send(Sequenced {
            seq: job.seq,
            ctx: job.ctx,
            outcome: StreamOutcome::Response(Box::new(response)),
            prep_built,
        });
    }
}

/// The sequencer: buffer out-of-order completions, emit strictly by
/// sequence number, aggregate the report.
fn sequencer_loop<C, F>(
    results_rx: mpsc::Receiver<Sequenced<C>>,
    credits_rx: mpsc::Receiver<()>,
    mut sink: F,
) -> ServiceReport
where
    F: FnMut(C, StreamOutcome),
{
    let mut report = ServiceReport::default();
    let mut next: u64 = 0;
    let mut pending: BTreeMap<u64, Sequenced<C>> = BTreeMap::new();
    let mut emit = |s: Sequenced<C>, report: &mut ServiceReport| {
        report.requests += 1;
        if s.prep_built {
            report.prep_builds += 1;
        }
        match &s.outcome {
            StreamOutcome::Rejected { .. } => report.rejected += 1,
            StreamOutcome::Overloaded { .. } => report.overloaded += 1,
            StreamOutcome::Response(resp) => {
                report.executed += 1;
                if resp.result.is_err() {
                    report.errors += 1;
                }
                report.tiers.record(&resp.stats);
                report.engine_evals += resp.stats.engine_evals;
                report.replayed += resp.stats.replayed;
                report.service_hist.record(resp.stats.service);
                report.queue_hist.record(resp.stats.queue_wait);
            }
        }
        sink(s.ctx, s.outcome);
        // Free one admission credit per emitted item.
        let _ = credits_rx.try_recv();
    };
    while let Ok(s) = results_rx.recv() {
        pending.insert(s.seq, s);
        while let Some(s) = pending.remove(&next) {
            emit(s, &mut report);
            next += 1;
        }
    }
    // Channel closed: flush whatever remains in order. Gaps can only
    // appear if a worker died mid-request; emitting the survivors keeps
    // every delivered outcome in submission order.
    for (_, s) in std::mem::take(&mut pending) {
        emit(s, &mut report);
    }
    report
}

/// Execute one request against the sharded cache: the per-request
/// analogue of the one-shot scheduler's group execution, with the same
/// three reuse tiers. Returns `(result, stats, prep_built)`.
fn execute_request(
    cache: &ShardedCache,
    cache_enabled: bool,
    memo_cap: usize,
    req: &ServeRequest,
) -> (Result<ServeResult, String>, ServeStats, bool) {
    if !req.payload_matches_kind() {
        return (
            Err(format!("request kind `{}` does not match its instance payload", req.kind.name())),
            ServeStats::default(),
            false,
        );
    }
    let hash = prep_hash(req);
    let params = params_key(&req.kind);
    let entry = if cache_enabled { cache.take(hash, req) } else { None };
    let (result, stats, entry, prep_built) = match &req.payload {
        InstancePayload::Packing(_) => run_packing_request(req, hash, &params, entry, memo_cap),
        InstancePayload::Mixed(_) => run_mixed_request(req, hash, &params, entry, memo_cap),
    };
    if cache_enabled {
        if let Some(entry) = entry {
            cache.insert(entry);
        }
    }
    (result, stats, prep_built)
}

/// Memo lookup shared by both families.
fn memo_hit(memo: &[MemoEntry], params: &str) -> Option<ServeResult> {
    memo.iter().find(|m| m.params == params).map(|m| m.result.clone())
}

#[allow(clippy::type_complexity)]
fn run_packing_request(
    req: &ServeRequest,
    hash: u64,
    params: &str,
    entry: Option<CacheEntry>,
    memo_cap: usize,
) -> (Result<ServeResult, String>, ServeStats, Option<CacheEntry>, bool) {
    let (engine_kind, seed) = prep_engine_of(&req.kind);
    let build_opts = DecisionOptions::practical(0.1).with_engine(engine_kind).with_seed(seed);
    let (inst, prior_engine, mut memo, mut bracket) = match entry {
        Some(e) => match e.prepared {
            Prepared::Packing { inst, engine } => (inst, Some(engine), e.memo, e.bracket),
            Prepared::Mixed { .. } => {
                return (
                    Err("cache entry family mismatch (internal)".to_string()),
                    ServeStats::default(),
                    None,
                    false,
                );
            }
        },
        None => match &req.payload {
            InstancePayload::Packing(i) => (Arc::clone(i), None, Vec::new(), None),
            InstancePayload::Mixed(_) => {
                return (
                    Err("mixed payload routed to a packing run (internal)".to_string()),
                    ServeStats::default(),
                    None,
                    false,
                );
            }
        },
    };
    let prep_built = prior_engine.is_none();
    let mut stats = ServeStats { prep_reused: !prep_built, ..ServeStats::default() };

    // Tier 1 first: a memo hit pays neither solver assembly nor a solve.
    if let Some(hit) = memo_hit(&memo, params) {
        stats.memoized = true;
        let entry = CacheEntry {
            hash,
            engine_kind,
            seed,
            prepared: Prepared::Packing {
                inst,
                engine: match prior_engine {
                    Some(e) => e,
                    // A memo hit without prepared state cannot happen (the
                    // memo lives inside the entry), but rebuild if it does.
                    None => {
                        return (Ok(hit), stats, None, false);
                    }
                },
            },
            memo,
            bracket,
            last_used: 0,
        };
        return (Ok(hit), stats, Some(entry), false);
    }

    let inst_ref = Arc::clone(&inst);
    let builder = Solver::builder(&inst_ref).options(build_opts);
    let solver = match match prior_engine {
        Some(engine) => builder.build_with_engine(engine),
        None => builder.build(),
    } {
        Ok(s) => s,
        Err(e) => {
            return (
                Err(format!("solver preparation failed: {e}")),
                ServeStats::default(),
                None,
                false,
            );
        }
    };
    let mut session = solver.session();
    let result: Result<ServeResult, String> = match &req.kind {
        RequestKind::Decision { threshold, opts } => session
            .solve_with(*threshold, opts)
            .map(ServeResult::Decision)
            .map_err(|e| e.to_string()),
        RequestKind::Optimize { opts } => {
            let mut o = *opts;
            if let Some((prior_params, lo, hi)) = &bracket {
                if prior_params != params {
                    // Tier 3: continue from the prior certified bracket.
                    o.initial_bracket = Some(match o.initial_bracket {
                        Some((l, h)) => (l.max(*lo), h.min(*hi)),
                        None => (*lo, *hi),
                    });
                    stats.bracket_injected = true;
                }
            }
            session
                .optimize(&o)
                .map(|r| {
                    bracket = Some((params.to_string(), r.value_lower, r.value_upper));
                    ServeResult::Optimize(r)
                })
                .map_err(|e| e.to_string())
        }
        RequestKind::Mixed { .. } => {
            Err("mixed request routed to a packing run (internal)".to_string())
        }
    };
    if let Ok(res) = &result {
        let (evals, replayed) = match res {
            ServeResult::Decision(d) => (d.stats.engine_evals, d.stats.replayed),
            ServeResult::Optimize(r) => (r.total_engine_evals, r.total_replayed),
            ServeResult::Mixed(_) => (0, 0),
        };
        stats.engine_evals = evals;
        stats.replayed = replayed;
        if memo.len() < memo_cap {
            memo.push(MemoEntry { params: params.to_string(), result: res.clone() });
        }
    }
    let engine = solver.engine_handle();
    drop(session);
    let entry = CacheEntry {
        hash,
        engine_kind,
        seed,
        prepared: Prepared::Packing { inst, engine },
        memo,
        bracket,
        last_used: 0,
    };
    (result, stats, Some(entry), prep_built)
}

#[allow(clippy::type_complexity)]
fn run_mixed_request(
    req: &ServeRequest,
    hash: u64,
    params: &str,
    entry: Option<CacheEntry>,
    memo_cap: usize,
) -> (Result<ServeResult, String>, ServeStats, Option<CacheEntry>, bool) {
    let (engine_kind, seed) = prep_engine_of(&req.kind);
    let build_opts = MixedOptions::practical(0.1).with_engine(engine_kind).with_seed(seed);
    let (inst, prior_engines, mut memo) = match entry {
        Some(e) => match e.prepared {
            Prepared::Mixed { inst, pack_engine, cover_engine } => {
                (inst, Some((pack_engine, cover_engine)), e.memo)
            }
            Prepared::Packing { .. } => {
                return (
                    Err("cache entry family mismatch (internal)".to_string()),
                    ServeStats::default(),
                    None,
                    false,
                );
            }
        },
        None => match &req.payload {
            InstancePayload::Mixed(i) => (Arc::clone(i), None, Vec::new()),
            InstancePayload::Packing(_) => {
                return (
                    Err("packing payload routed to a mixed run (internal)".to_string()),
                    ServeStats::default(),
                    None,
                    false,
                );
            }
        },
    };
    let prep_built = prior_engines.is_none();
    let mut stats = ServeStats { prep_reused: !prep_built, ..ServeStats::default() };

    if let Some(hit) = memo_hit(&memo, params) {
        stats.memoized = true;
        let entry = prior_engines.map(|(pack_engine, cover_engine)| CacheEntry {
            hash,
            engine_kind,
            seed,
            prepared: Prepared::Mixed { inst, pack_engine, cover_engine },
            memo,
            bracket: None,
            last_used: 0,
        });
        return (Ok(hit), stats, entry, false);
    }

    let inst_ref = Arc::clone(&inst);
    let builder = MixedSolver::builder(&inst_ref).options(build_opts);
    let solver = match match prior_engines {
        Some((pack, cover)) => builder.build_with_engines(pack, cover),
        None => builder.build(),
    } {
        Ok(s) => s,
        Err(e) => {
            return (
                Err(format!("solver preparation failed: {e}")),
                ServeStats::default(),
                None,
                false,
            );
        }
    };
    let mut session = solver.session();
    let result: Result<ServeResult, String> = match &req.kind {
        RequestKind::Mixed { opts } => {
            session.optimize(opts).map(ServeResult::Mixed).map_err(|e| e.to_string())
        }
        _ => Err("packing request routed to a mixed run (internal)".to_string()),
    };
    if let Ok(res) = &result {
        if let ServeResult::Mixed(r) = res {
            stats.engine_evals = r.total_engine_evals;
        }
        if memo.len() < memo_cap {
            memo.push(MemoEntry { params: params.to_string(), result: res.clone() });
        }
    }
    let (pack_engine, cover_engine) = solver.engine_handles();
    drop(session);
    let entry = CacheEntry {
        hash,
        engine_kind,
        seed,
        prepared: Prepared::Mixed { inst, pack_engine, cover_engine },
        memo,
        bracket: None,
        last_used: 0,
    };
    (result, stats, Some(entry), prep_built)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_core::{
        ApproxOptions, DecisionOptions, MixedApproxOptions, MixedInstance, PackingInstance,
    };
    use psdp_sparse::PsdMatrix;
    use std::sync::Arc;

    fn diag_inst(rows: &[&[f64]]) -> Arc<PackingInstance> {
        Arc::new(
            PackingInstance::new(rows.iter().map(|r| PsdMatrix::Diagonal(r.to_vec())).collect())
                .unwrap(),
        )
    }

    fn mixed_inst() -> Arc<MixedInstance> {
        Arc::new(
            MixedInstance::new(
                vec![PsdMatrix::Diagonal(vec![2.0, 0.0]), PsdMatrix::Diagonal(vec![0.0, 2.0])],
                vec![PsdMatrix::Diagonal(vec![1.0, 0.0]), PsdMatrix::Diagonal(vec![0.0, 1.0])],
            )
            .unwrap(),
        )
    }

    fn run_service(
        opts: ServiceOptions,
        requests: Vec<ServeRequest>,
    ) -> (Vec<(usize, StreamOutcome)>, ServiceReport, Service) {
        let mut service = Service::new(opts);
        let items = requests
            .into_iter()
            .enumerate()
            .map(|(i, request)| StreamItem::Execute { request, ctx: i });
        let mut got: Vec<(usize, StreamOutcome)> = Vec::new();
        let report = service.run_stream(items, |ctx, out| got.push((ctx, out)));
        (got, report, service)
    }

    #[test]
    fn heterogeneous_stream_serves_all_kinds_in_order() {
        let pack = diag_inst(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let requests = vec![
            ServeRequest::decision("d1", Arc::clone(&pack), 0.5, DecisionOptions::practical(0.2)),
            ServeRequest::optimize("o1", Arc::clone(&pack), ApproxOptions::serving(0.1)),
            ServeRequest::mixed("m1", mixed_inst(), MixedApproxOptions::practical(0.1)),
        ];
        let (got, report, service) = run_service(ServiceOptions::default(), requests);
        assert_eq!(got.len(), 3);
        // Submission order regardless of which worker finished first.
        assert_eq!(got.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(report.requests, 3);
        assert_eq!(report.executed, 3);
        assert_eq!(report.errors, 0);
        assert_eq!(report.overloaded, 0);
        match &got[1].1 {
            StreamOutcome::Response(r) => match &r.result {
                Ok(ServeResult::Optimize(o)) => {
                    assert!(o.converged);
                    assert!(o.value_lower <= 0.75 + 1e-9 && o.value_upper >= 0.75 - 1e-9);
                }
                other => panic!("bad optimize response: {other:?}"),
            },
            _ => panic!("expected a response"),
        }
        // decision+optimize share one fingerprint, mixed has its own.
        assert_eq!(service.cached_fingerprints(), 2);
        assert_eq!(report.prep_builds, 2);
    }

    #[test]
    fn streaming_memoization_matches_one_shot_semantics() {
        let pack = diag_inst(&[&[1.0, 0.0, 0.5], &[0.0, 1.0, 0.5], &[0.5, 0.5, 0.0]]);
        let opts = ApproxOptions::serving(0.1);
        let requests = vec![
            ServeRequest::optimize("a", Arc::clone(&pack), opts),
            ServeRequest::optimize("b", Arc::clone(&pack), opts),
        ];
        let (got, report, _) = run_service(ServiceOptions::default(), requests);
        let stats = |i: usize| match &got[i].1 {
            StreamOutcome::Response(r) => r.stats.clone(),
            _ => panic!("expected response"),
        };
        assert!(!stats(0).memoized && stats(1).memoized);
        assert_eq!(stats(1).engine_evals, 0);
        assert_eq!(report.tiers.memo_hits, 1);
        assert_eq!(report.prep_builds, 1);
    }

    #[test]
    fn rejects_flow_through_in_submission_order() {
        let pack = diag_inst(&[&[1.0]]);
        let mut service = Service::new(ServiceOptions::default());
        let items = vec![
            StreamItem::Execute {
                request: ServeRequest::decision(
                    "ok",
                    Arc::clone(&pack),
                    1.0,
                    DecisionOptions::practical(0.2),
                ),
                ctx: 0usize,
            },
            StreamItem::Reject { error: "bad json".to_string(), ctx: 1usize },
            StreamItem::Execute {
                request: ServeRequest::decision(
                    "ok2",
                    Arc::clone(&pack),
                    1.0,
                    DecisionOptions::practical(0.2),
                ),
                ctx: 2usize,
            },
        ];
        let mut got = Vec::new();
        let report = service.run_stream(items.into_iter(), |ctx, out| got.push((ctx, out)));
        assert_eq!(got.len(), 3);
        assert!(matches!(got[0].1, StreamOutcome::Response(_)));
        assert!(matches!(&got[1].1, StreamOutcome::Rejected { error } if error == "bad json"));
        assert!(matches!(got[2].1, StreamOutcome::Response(_)));
        assert_eq!(report.rejected, 1);
        assert_eq!(report.executed, 2);
    }

    #[test]
    fn mismatched_payload_is_a_per_request_error() {
        let pack = diag_inst(&[&[1.0]]);
        let payload = InstancePayload::Packing(Arc::clone(&pack));
        let bad = ServeRequest {
            id: "bad".into(),
            content_hash: payload.content_hash(),
            payload,
            kind: RequestKind::Mixed { opts: MixedApproxOptions::practical(0.1) },
        };
        let (got, report, _) = run_service(ServiceOptions::default(), vec![bad]);
        match &got[0].1 {
            StreamOutcome::Response(r) => assert!(r.result.is_err()),
            _ => panic!("expected response"),
        }
        assert_eq!(report.errors, 1);
    }

    #[test]
    fn tiny_queue_backpressure_sheds_typed_overloads() {
        // One shard, capacity 1, and max_outstanding large enough that
        // admission itself never blocks: flooding the queue must produce
        // typed overload outcomes, not hangs or panics, and every request
        // must still be answered in submission order.
        let pack = diag_inst(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let n = 24usize;
        let requests: Vec<ServeRequest> = (0..n)
            .map(|i| {
                ServeRequest::optimize(
                    format!("r{i:03}"),
                    Arc::clone(&pack),
                    ApproxOptions::serving(0.1 + 0.001 * i as f64),
                )
            })
            .collect();
        let opts = ServiceOptions {
            shards: 1,
            queue_capacity: 1,
            max_outstanding: 4 * n,
            ..ServiceOptions::default()
        };
        let (got, report, _) = run_service(opts, requests);
        assert_eq!(got.len(), n);
        assert_eq!(got.iter().map(|(i, _)| *i).collect::<Vec<_>>(), (0..n).collect::<Vec<_>>());
        assert_eq!(report.executed + report.overloaded, n);
        for (_, out) in &got {
            match out {
                StreamOutcome::Response(r) => assert!(r.result.is_ok()),
                StreamOutcome::Overloaded { id, shard } => {
                    assert!(id.starts_with('r'));
                    assert_eq!(*shard, Some(0));
                }
                StreamOutcome::Rejected { .. } => panic!("no rejects in this stream"),
            }
        }
        // Depth counts queued items plus at most one being handed to the
        // worker, so the high-water mark is bounded by capacity + 1.
        assert!(report.queue_high_water.iter().all(|&h| h <= 2), "{:?}", report.queue_high_water);
    }

    #[test]
    fn caller_shed_items_emit_typed_overloads_in_order() {
        let pack = diag_inst(&[&[1.0]]);
        let mut service = Service::new(ServiceOptions::default());
        let mk = |id: &str, ctx: usize| StreamItem::Execute {
            request: ServeRequest::decision(
                id.to_string(),
                Arc::clone(&pack),
                1.0,
                DecisionOptions::practical(0.2),
            ),
            ctx,
        };
        let items = vec![
            mk("a", 0),
            StreamItem::Shed { id: "capped".to_string(), ctx: 1usize },
            mk("b", 2),
        ];
        let mut got = Vec::new();
        let report = service.run_stream(items.into_iter(), |ctx, out| got.push((ctx, out)));
        assert_eq!(got.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![0, 1, 2]);
        match &got[1].1 {
            StreamOutcome::Overloaded { id, shard } => {
                assert_eq!(id, "capped");
                assert_eq!(*shard, None, "caller sheds carry no shard");
            }
            _ => panic!("expected an overloaded outcome"),
        }
        assert_eq!(report.overloaded, 1);
        assert_eq!(report.executed, 2);
    }

    #[test]
    fn shed_allowance_scales_with_observed_p99() {
        let hist = Mutex::new(LatencyHistogram::default());
        // No target: unlimited (the fixed queue bound governs alone).
        assert_eq!(shed_allowance(None, &hist, 8), usize::MAX);
        // Target set, no samples yet: full capacity.
        let target = Some(Duration::from_micros(100));
        assert_eq!(shed_allowance(target, &hist, 8), 8);
        // Observed p99 at or under the target: full capacity.
        for _ in 0..100 {
            hist.lock().record(Duration::from_micros(50));
        }
        assert_eq!(shed_allowance(target, &hist, 8), 8);
        // Observed p99 far over the target: allowance shrinks, clamped
        // to at least 1.
        for _ in 0..1000 {
            hist.lock().record(Duration::from_millis(40));
        }
        let shrunk = shed_allowance(target, &hist, 8);
        assert!((1..8).contains(&shrunk), "allowance {shrunk} should shrink under overload");
        assert_eq!(shed_allowance(Some(Duration::from_nanos(1)), &hist, 8), 1);
    }

    #[test]
    fn adaptive_shed_keeps_streams_ordered_and_answered() {
        // An aggressively tiny p99 target must never hang, drop, or
        // reorder the stream — every request is answered exactly once in
        // submission order, each either executed or typed-overloaded.
        let pack = diag_inst(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let n = 24usize;
        let requests: Vec<ServeRequest> = (0..n)
            .map(|i| {
                ServeRequest::optimize(
                    format!("r{i:03}"),
                    Arc::clone(&pack),
                    ApproxOptions::serving(0.1 + 0.001 * i as f64),
                )
            })
            .collect();
        let opts = ServiceOptions {
            shards: 1,
            queue_capacity: 8,
            max_outstanding: 4 * n,
            shed_target_p99: Some(Duration::from_nanos(1)),
            ..ServiceOptions::default()
        };
        let (got, report, _) = run_service(opts, requests);
        assert_eq!(got.len(), n);
        assert_eq!(got.iter().map(|(i, _)| *i).collect::<Vec<_>>(), (0..n).collect::<Vec<_>>());
        assert_eq!(report.executed + report.overloaded, n);
    }

    #[test]
    fn shard_count_does_not_change_deterministic_response_fields() {
        let insts: Vec<Arc<PackingInstance>> =
            (0..6).map(|i| diag_inst(&[&[1.0 + i as f64, 0.0], &[0.0, 2.0 + i as f64]])).collect();
        let mk = || -> Vec<ServeRequest> {
            (0..24)
                .map(|t| {
                    let inst = &insts[t % insts.len()];
                    ServeRequest::optimize(
                        format!("r{t:03}"),
                        Arc::clone(inst),
                        ApproxOptions::serving(0.1),
                    )
                })
                .collect()
        };
        let digest = |shards: usize| -> Vec<String> {
            let opts = ServiceOptions { shards, ..ServiceOptions::default() };
            let (got, _, _) = run_service(opts, mk());
            got.iter()
                .map(|(i, out)| match out {
                    StreamOutcome::Response(r) => match &r.result {
                        Ok(ServeResult::Optimize(o)) => format!(
                            "{i}:{}:{:x}:{:x}:memo={}:prep={}",
                            r.id,
                            o.value_lower.to_bits(),
                            o.value_upper.to_bits(),
                            r.stats.memoized,
                            r.stats.prep_reused
                        ),
                        other => format!("{i}:{other:?}"),
                    },
                    _ => format!("{i}:non-response"),
                })
                .collect()
        };
        assert_eq!(digest(1), digest(4), "shard count must not change response values");
    }

    #[test]
    fn cache_disabled_is_cold_every_time() {
        let pack = diag_inst(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let opts = ApproxOptions::serving(0.15);
        let requests: Vec<ServeRequest> = (0..3)
            .map(|i| ServeRequest::optimize(format!("r{i}"), Arc::clone(&pack), opts))
            .collect();
        let (_, report, service) = run_service(
            ServiceOptions { cache_enabled: false, ..ServiceOptions::default() },
            requests,
        );
        assert_eq!(report.prep_builds, 3);
        assert_eq!(report.tiers.memo_hits, 0);
        assert_eq!(service.cached_fingerprints(), 0);
    }

    #[test]
    fn cache_persists_across_streams() {
        let pack = diag_inst(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let mut service = Service::new(ServiceOptions::default());
        let mk = |id: &str| StreamItem::Execute {
            request: ServeRequest::optimize(
                id.to_string(),
                Arc::clone(&pack),
                ApproxOptions::serving(0.2),
            ),
            ctx: (),
        };
        let r1 = service.run_stream(vec![mk("a")].into_iter(), |_, _| {});
        assert_eq!(r1.prep_builds, 1);
        let mut memoized = false;
        let r2 = service.run_stream(vec![mk("b")].into_iter(), |_, out| {
            if let StreamOutcome::Response(r) = out {
                memoized = r.stats.memoized;
            }
        });
        assert_eq!(r2.prep_builds, 0);
        assert!(memoized, "identical request across streams must memo-hit");
    }
}
