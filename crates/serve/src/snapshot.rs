//! Cache snapshot persistence: write the service's prepared fingerprints
//! to a versioned text format and warm-reload them at startup.
//!
//! ## What is (and is not) persisted
//!
//! Prepared engines hold factorizations and resolved strategies — state
//! that is expensive to serialize and riskier still to trust from disk.
//! The snapshot therefore stores the *rebuild inputs* instead: the
//! request family, the engine kind (float parameters as exact IEEE-754
//! bit patterns), the sketch seed, the instance itself, and the last
//! certified optimize bracket. Loading replays the ordinary solver
//! preparation path over those inputs, so a warm-started service holds
//! engines bit-identical to ones it would have built cold — the snapshot
//! moves preparation cost off the serving path without introducing a new
//! trust boundary. The memo tier is deliberately **not** persisted:
//! results are only replayed within one process lifetime, where "the
//! pipeline is deterministic" is an invariant the binary itself enforces.
//!
//! Instances are stored in one of two payload encodings: small ones as
//! canonical `psdp` text (human-inspectable, diff-friendly), large ones
//! (over `BIN_PAYLOAD_NNZ_THRESHOLD` = 1024 stored entries) as hex-encoded
//! `psdp-bin-1` bytes, which load without any float parsing.
//!
//! ## Verification on load
//!
//! Every entry is fully verified before insertion, mirroring the cache's
//! verify-on-hit discipline:
//!
//! 1. the payload must be *canonical* (read→write is a byte fixpoint in
//!    its encoding), so a snapshot edited into a non-canonical spelling
//!    of the same instance cannot alias a different fingerprint;
//! 2. the preparation hash recomputed from the rebuilt inputs
//!    ([`crate::cache::prep_hash_parts`] over the family, engine kind,
//!    seed, and the instance's structural content hash) must equal the
//!    stored fingerprint;
//! 3. duplicate fingerprints (hash *and* structural instance equality)
//!    are rejected.
//!
//! Any failure yields a typed [`SnapshotError`] — callers fall back to a
//! cold start; a corrupted snapshot can never panic the service or
//! poison its cache. Version-1 snapshots (which keyed entries by
//! canonical instance text) are rejected the same way.
//!
//! ## On-disk atomicity and generations
//!
//! [`save_to_path`] never writes the live path directly: the text lands
//! in `<path>.tmp` first and is renamed into place, so a crash mid-write
//! can tear only the tmp file — which loads ignore and the next save
//! overwrites — never an existing generation. With `keep > 1`, prior
//! generations rotate to `<path>.1`, `<path>.2`, … before the rename, and
//! loaders fall back through [`generation_paths`] when the live file is
//! missing or corrupt. Every generation is a full compact rewrite of the
//! live prepared-key set (sorted entries, LRU-evicted keys gone) — never
//! a delta or append — so old garbage cannot accumulate across rotations.

use crate::cache::{family_tag, prep_hash_parts, CacheEntry, Prepared};
use crate::shard::ShardedCache;
use psdp_core::{
    read_instance, read_instance_bin, read_mixed_instance, read_mixed_instance_bin, write_instance,
    write_instance_bin, write_mixed_instance, write_mixed_instance_bin, DecisionOptions,
    MixedOptions, MixedSolver, Solver,
};
use psdp_expdot::EngineKind;
use std::fmt;
use std::sync::Arc;

/// Snapshot format version header (line 1 of every snapshot).
const HEADER: &str = "psdp snapshot v2";

/// Instances with more stored entries than this are snapshotted as
/// hex-encoded `psdp-bin-1` payloads instead of canonical text.
const BIN_PAYLOAD_NNZ_THRESHOLD: usize = 1024;

/// Hex characters per payload line (48 bytes).
const HEX_LINE_CHARS: usize = 96;

/// Why a snapshot failed to load. All variants are recoverable: the
/// caller's cache is untouched and a cold start is always safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The text does not parse as the versioned snapshot format.
    Format {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// An entry parsed but failed full verification (non-canonical
    /// payload, fingerprint hash mismatch, duplicate fingerprint).
    Verify {
        /// What failed to verify.
        msg: String,
    },
    /// Solver preparation over the stored inputs failed.
    Rebuild {
        /// The preparation error.
        msg: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Format { line, msg } => {
                write!(f, "snapshot format error at line {line}: {msg}")
            }
            SnapshotError::Verify { msg } => write!(f, "snapshot verification failed: {msg}"),
            SnapshotError::Rebuild { msg } => {
                write!(f, "snapshot engine rebuild failed: {msg}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Exact, locale-free f64 rendering: the IEEE-754 bit pattern in hex.
fn f64_bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Inverse of [`f64_bits`].
fn parse_f64_bits(s: &str, line: usize) -> Result<f64, SnapshotError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| SnapshotError::Format { line, msg: format!("bad f64 bit pattern `{s}`") })
}

/// Render an engine kind as a `engine <tag> [params…]` line body.
fn render_engine(kind: EngineKind) -> String {
    match kind {
        EngineKind::Exact => "exact".to_string(),
        EngineKind::Taylor { eps } => format!("taylor {}", f64_bits(eps)),
        EngineKind::TaylorJl { eps, sketch_const } => {
            format!("taylor_jl {} {}", f64_bits(eps), f64_bits(sketch_const))
        }
        EngineKind::Expv { eps } => format!("expv {}", f64_bits(eps)),
        EngineKind::Auto { eps } => format!("auto {}", f64_bits(eps)),
    }
}

/// Parse the body of an `engine` line.
fn parse_engine(body: &str, line: usize) -> Result<EngineKind, SnapshotError> {
    let mut parts = body.split(' ');
    let tag = parts.next().unwrap_or("");
    let kind = match (tag, parts.next(), parts.next(), parts.next()) {
        ("exact", None, _, _) => EngineKind::Exact,
        ("taylor", Some(eps), None, _) => EngineKind::Taylor { eps: parse_f64_bits(eps, line)? },
        ("taylor_jl", Some(eps), Some(c), None) => EngineKind::TaylorJl {
            eps: parse_f64_bits(eps, line)?,
            sketch_const: parse_f64_bits(c, line)?,
        },
        ("expv", Some(eps), None, _) => EngineKind::Expv { eps: parse_f64_bits(eps, line)? },
        ("auto", Some(eps), None, _) => EngineKind::Auto { eps: parse_f64_bits(eps, line)? },
        _ => {
            return Err(SnapshotError::Format { line, msg: format!("bad engine spec `{body}`") });
        }
    };
    Ok(kind)
}

/// Hex-encode `bytes` into lines of [`HEX_LINE_CHARS`] characters.
fn hex_lines(bytes: &[u8]) -> Vec<String> {
    let mut hex = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        hex.push_str(&format!("{b:02x}"));
    }
    let mut lines = Vec::new();
    let mut rest = hex.as_str();
    while !rest.is_empty() {
        let cut = rest.len().min(HEX_LINE_CHARS);
        let (line, tail) = rest.split_at(cut);
        lines.push(line.to_string());
        rest = tail;
    }
    lines
}

/// Decode a concatenated hex payload back into bytes.
fn hex_decode(s: &str, line: usize) -> Result<Vec<u8>, SnapshotError> {
    let mut out = Vec::with_capacity(s.len() / 2);
    let mut i = 0;
    while i < s.len() {
        let Some(pair) = s.get(i..i + 2) else {
            return Err(SnapshotError::Format { line, msg: "odd-length hex payload".to_string() });
        };
        let byte = u8::from_str_radix(pair, 16)
            .map_err(|_| SnapshotError::Format { line, msg: format!("bad hex byte `{pair}`") })?;
        out.push(byte);
        i += 2;
    }
    Ok(out)
}

/// Serialize every cached fingerprint into the versioned snapshot text.
/// Rendered entry blocks are sorted as strings, so the output is
/// independent of shard count and insertion order (write→load→write is a
/// byte fixpoint).
pub(crate) fn write_snapshot(cache: &ShardedCache) -> String {
    let mut blocks: Vec<String> = Vec::new();
    cache.for_each(|e| blocks.push(render_entry(e)));
    blocks.sort();
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("entries {}\n", blocks.len()));
    for b in blocks {
        out.push_str(&b);
    }
    out
}

/// The snapshot generation paths for `path`, newest first: the live path
/// itself, then `<path>.1` … `<path>.<keep-1>` (`keep` is clamped to at
/// least 1). Loaders try these in order and take the first that verifies.
pub fn generation_paths(path: &str, keep: usize) -> Vec<String> {
    std::iter::once(path.to_string())
        .chain((1..keep.max(1)).map(|i| format!("{path}.{i}")))
        .collect()
}

/// Atomically persist snapshot `text` as the live generation of `path`,
/// keeping up to `keep` generations. The text is written to `<path>.tmp`
/// first; existing generations then rotate up (`<path>.<keep-2>` →
/// `<path>.<keep-1>`, …, `<path>` → `<path>.1`) and the tmp file is
/// renamed into place. A crash at any step leaves every previously
/// complete generation intact — a torn write can only ever produce a
/// stray `.tmp` file, which no loader reads.
///
/// # Errors
/// Printable IO failures (the caller degrades to a summary note; serving
/// is never refused over a snapshot).
pub fn save_to_path(path: &str, text: &str, keep: usize) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, text).map_err(|e| format!("writing {tmp}: {e}"))?;
    let gens = generation_paths(path, keep);
    for pair in gens.windows(2).rev() {
        if let [from, to] = pair {
            if std::fs::metadata(from).is_ok() {
                // Rotation is best-effort: losing an old generation must
                // not fail the save of the new one.
                let _ = std::fs::rename(from, to);
            }
        }
    }
    std::fs::rename(&tmp, path).map_err(|e| format!("renaming {tmp} into place: {e}"))
}

fn render_entry(e: &CacheEntry) -> String {
    let (family, payload_kind, payload_lines) = match &e.prepared {
        Prepared::Packing { inst, .. } => {
            if inst.total_nnz() > BIN_PAYLOAD_NNZ_THRESHOLD {
                ("packing", "bin", hex_lines(&write_instance_bin(inst)))
            } else {
                ("packing", "text", write_instance(inst).lines().map(String::from).collect())
            }
        }
        Prepared::Mixed { inst, .. } => {
            if inst.total_nnz() > BIN_PAYLOAD_NNZ_THRESHOLD {
                ("mixed", "bin", hex_lines(&write_mixed_instance_bin(inst)))
            } else {
                ("mixed", "text", write_mixed_instance(inst).lines().map(String::from).collect())
            }
        }
    };
    let bracket = match &e.bracket {
        Some((params, lo, hi)) => {
            format!("bracket {} {} {params}", f64_bits(*lo), f64_bits(*hi))
        }
        None => "bracket none".to_string(),
    };
    let mut out = String::new();
    out.push_str("entry\n");
    out.push_str(&format!("family {family}\n"));
    out.push_str(&format!("engine {}\n", render_engine(e.engine_kind)));
    out.push_str(&format!("seed {}\n", e.seed));
    out.push_str(&format!("hash {:016x}\n", e.hash));
    out.push_str(&bracket);
    out.push('\n');
    out.push_str(&format!("payload {payload_kind} {}\n", payload_lines.len()));
    for line in payload_lines {
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str("end\n");
    out
}

/// Cursor over snapshot lines with 1-based numbering for errors.
struct Cursor<'a> {
    lines: Vec<&'a str>,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn next(&mut self) -> Option<(usize, &'a str)> {
        let line = self.lines.get(self.pos).copied()?;
        self.pos += 1;
        Some((self.pos, line))
    }

    fn expect_field(&mut self, name: &str) -> Result<(usize, &'a str), SnapshotError> {
        let Some((no, line)) = self.next() else {
            return Err(SnapshotError::Format {
                line: self.pos,
                msg: format!("unexpected end of snapshot, wanted `{name} …`"),
            });
        };
        match line.strip_prefix(name).and_then(|r| r.strip_prefix(' ')) {
            Some(rest) => Ok((no, rest)),
            None => Err(SnapshotError::Format {
                line: no,
                msg: format!("expected `{name} …`, found `{line}`"),
            }),
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), SnapshotError> {
        let Some((no, line)) = self.next() else {
            return Err(SnapshotError::Format {
                line: self.pos,
                msg: format!("unexpected end of snapshot, wanted `{lit}`"),
            });
        };
        if line == lit {
            Ok(())
        } else {
            Err(SnapshotError::Format {
                line: no,
                msg: format!("expected `{lit}`, found `{line}`"),
            })
        }
    }
}

/// Parse, verify, and rebuild every entry of a snapshot. On success the
/// entries are ready for [`ShardedCache::insert`]; on any failure nothing
/// is returned and the caller's cache is untouched.
pub(crate) fn load_snapshot(text: &str) -> Result<Vec<CacheEntry>, SnapshotError> {
    let mut cur = Cursor { lines: text.lines().collect(), pos: 0 };
    cur.expect_literal(HEADER)?;
    let (no, count_body) = cur.expect_field("entries")?;
    let count: usize = count_body.parse().map_err(|_| SnapshotError::Format {
        line: no,
        msg: format!("bad entry count `{count_body}`"),
    })?;

    let mut entries: Vec<CacheEntry> = Vec::with_capacity(count);
    for _ in 0..count {
        let entry = load_entry(&mut cur)?;
        let dup = entries.iter().any(|e| {
            e.hash == entry.hash
                && e.engine_kind == entry.engine_kind
                && e.seed == entry.seed
                && e.prepared.payload().structural_eq(&entry.prepared.payload())
        });
        if dup {
            return Err(SnapshotError::Verify {
                msg: format!("duplicate fingerprint (hash {:016x})", entry.hash),
            });
        }
        entries.push(entry);
    }
    if let Some((no, line)) = cur.next() {
        return Err(SnapshotError::Format {
            line: no,
            msg: format!("trailing content after last entry: `{line}`"),
        });
    }
    Ok(entries)
}

/// The decoded instance payload of one snapshot entry, plus its
/// structural content hash.
enum LoadedInstance {
    Packing(Arc<psdp_core::PackingInstance>, u64),
    Mixed(Arc<psdp_core::MixedInstance>, u64),
}

/// Decode and canonicality-check one entry's payload.
fn load_payload(
    family: &str,
    fam_no: usize,
    kind: &str,
    text_payload: Option<String>,
    bin_payload: Option<Vec<u8>>,
) -> Result<LoadedInstance, SnapshotError> {
    let not_canonical = || SnapshotError::Verify {
        msg: "payload is not canonical (read→write is not a byte fixpoint)".to_string(),
    };
    let rejected =
        |e: psdp_core::PsdpError| SnapshotError::Verify { msg: format!("instance rejected: {e}") };
    match (family, kind, text_payload, bin_payload) {
        ("packing", "text", Some(text), _) => {
            let inst = read_instance(&text).map_err(rejected)?;
            if write_instance(&inst) != text {
                return Err(not_canonical());
            }
            let hash = psdp_core::packing_content_hash(&inst);
            Ok(LoadedInstance::Packing(Arc::new(inst), hash))
        }
        ("packing", "bin", _, Some(bytes)) => {
            let (inst, hash) = read_instance_bin(&bytes).map_err(rejected)?;
            if write_instance_bin(&inst) != bytes {
                return Err(not_canonical());
            }
            Ok(LoadedInstance::Packing(Arc::new(inst), hash))
        }
        ("mixed", "text", Some(text), _) => {
            let inst = read_mixed_instance(&text).map_err(rejected)?;
            if write_mixed_instance(&inst) != text {
                return Err(not_canonical());
            }
            let hash = psdp_core::mixed_content_hash(&inst);
            Ok(LoadedInstance::Mixed(Arc::new(inst), hash))
        }
        ("mixed", "bin", _, Some(bytes)) => {
            let (inst, hash) = read_mixed_instance_bin(&bytes).map_err(rejected)?;
            if write_mixed_instance_bin(&inst) != bytes {
                return Err(not_canonical());
            }
            Ok(LoadedInstance::Mixed(Arc::new(inst), hash))
        }
        _ => Err(SnapshotError::Format {
            line: fam_no,
            msg: format!("unknown family/payload combination `{family}`/`{kind}`"),
        }),
    }
}

fn load_entry(cur: &mut Cursor<'_>) -> Result<CacheEntry, SnapshotError> {
    cur.expect_literal("entry")?;
    let (fam_no, family) = cur.expect_field("family")?;
    let family = family.to_string();
    let (eng_no, engine_body) = cur.expect_field("engine")?;
    let engine_kind = parse_engine(engine_body, eng_no)?;
    let (seed_no, seed_body) = cur.expect_field("seed")?;
    let seed: u64 = seed_body.parse().map_err(|_| SnapshotError::Format {
        line: seed_no,
        msg: format!("bad seed `{seed_body}`"),
    })?;
    let (hash_no, hash_body) = cur.expect_field("hash")?;
    let hash = u64::from_str_radix(hash_body, 16).map_err(|_| SnapshotError::Format {
        line: hash_no,
        msg: format!("bad fingerprint hash `{hash_body}`"),
    })?;
    let (br_no, bracket_body) = cur.expect_field("bracket")?;
    let bracket: Option<(String, f64, f64)> = if bracket_body == "none" {
        None
    } else {
        let mut parts = bracket_body.splitn(3, ' ');
        match (parts.next(), parts.next(), parts.next()) {
            (Some(lo), Some(hi), Some(params)) if !params.is_empty() => {
                Some((params.to_string(), parse_f64_bits(lo, br_no)?, parse_f64_bits(hi, br_no)?))
            }
            _ => {
                return Err(SnapshotError::Format {
                    line: br_no,
                    msg: format!("bad bracket spec `{bracket_body}`"),
                });
            }
        }
    };
    let (pay_no, pay_body) = cur.expect_field("payload")?;
    let mut pay_parts = pay_body.split(' ');
    let (kind, n_lines) = match (pay_parts.next(), pay_parts.next(), pay_parts.next()) {
        (Some(kind @ ("text" | "bin")), Some(n), None) => {
            let n: usize = n.parse().map_err(|_| SnapshotError::Format {
                line: pay_no,
                msg: format!("bad payload line count `{n}`"),
            })?;
            (kind, n)
        }
        _ => {
            return Err(SnapshotError::Format {
                line: pay_no,
                msg: format!("bad payload spec `{pay_body}`"),
            });
        }
    };
    let mut body = String::new();
    for _ in 0..n_lines {
        let Some((_, line)) = cur.next() else {
            return Err(SnapshotError::Format {
                line: cur.pos,
                msg: "unexpected end of snapshot inside payload".to_string(),
            });
        };
        body.push_str(line);
        if kind == "text" {
            body.push('\n');
        }
    }
    cur.expect_literal("end")?;

    let (text_payload, bin_payload) =
        if kind == "text" { (Some(body), None) } else { (None, Some(hex_decode(&body, pay_no)?)) };
    let loaded = load_payload(&family, fam_no, kind, text_payload, bin_payload)?;

    // Rebuild + verify: the prep hash is recomputed from the rebuilt
    // inputs exactly as `prep_hash` would compute it for a live request,
    // then checked against the stored fingerprint — a tampered or
    // bit-rotted entry cannot alias a different fingerprint.
    let (prepared, content_hash) = match loaded {
        LoadedInstance::Packing(inst, content_hash) => {
            let opts = DecisionOptions::practical(0.1).with_engine(engine_kind).with_seed(seed);
            let solver = Solver::builder(&inst)
                .options(opts)
                .build()
                .map_err(|e| SnapshotError::Rebuild { msg: e.to_string() })?;
            let engine = solver.engine_handle();
            (Prepared::Packing { inst, engine }, content_hash)
        }
        LoadedInstance::Mixed(inst, content_hash) => {
            let opts = MixedOptions::practical(0.1).with_engine(engine_kind).with_seed(seed);
            let solver = MixedSolver::builder(&inst)
                .options(opts)
                .build()
                .map_err(|e| SnapshotError::Rebuild { msg: e.to_string() })?;
            let (pack_engine, cover_engine) = solver.engine_handles();
            (Prepared::Mixed { inst, pack_engine, cover_engine }, content_hash)
        }
    };
    let computed =
        prep_hash_parts(family_tag(&prepared.payload()), engine_kind, seed, content_hash);
    if computed != hash {
        return Err(SnapshotError::Verify {
            msg: format!("fingerprint hash mismatch (stored {hash:016x})"),
        });
    }
    if bracket.is_some() && matches!(prepared, Prepared::Mixed { .. }) {
        return Err(SnapshotError::Verify {
            msg: "mixed entries cannot carry a packing bracket".to_string(),
        });
    }
    Ok(CacheEntry { hash, engine_kind, seed, prepared, memo: Vec::new(), bracket, last_used: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{Service, ServiceOptions, StreamItem, StreamOutcome};
    use crate::ServeRequest;
    use psdp_core::{ApproxOptions, MixedApproxOptions, MixedInstance, PackingInstance};
    use psdp_sparse::PsdMatrix;

    fn warm_service() -> Service {
        let pack = Arc::new(
            PackingInstance::new(vec![
                PsdMatrix::Diagonal(vec![2.0, 0.0]),
                PsdMatrix::Diagonal(vec![0.0, 4.0]),
            ])
            .unwrap(),
        );
        let mixed = Arc::new(
            MixedInstance::new(
                vec![PsdMatrix::Diagonal(vec![2.0, 0.0]), PsdMatrix::Diagonal(vec![0.0, 2.0])],
                vec![PsdMatrix::Diagonal(vec![1.0, 0.0]), PsdMatrix::Diagonal(vec![0.0, 1.0])],
            )
            .unwrap(),
        );
        let mut service = Service::new(ServiceOptions::default());
        let items = vec![
            StreamItem::Execute {
                request: ServeRequest::optimize("a", pack, ApproxOptions::serving(0.1)),
                ctx: (),
            },
            StreamItem::Execute {
                request: ServeRequest::mixed("b", mixed, MixedApproxOptions::practical(0.1)),
                ctx: (),
            },
        ];
        let report = service.run_stream(items.into_iter(), |_, out| {
            if let StreamOutcome::Response(r) = out {
                assert!(r.result.is_ok());
            }
        });
        assert_eq!(report.errors, 0);
        service
    }

    #[test]
    fn write_load_write_is_a_byte_fixpoint() {
        let service = warm_service();
        let snap1 = service.snapshot_string();
        assert!(snap1.starts_with(HEADER));
        let mut fresh = Service::new(ServiceOptions::default());
        let loaded = fresh.load_snapshot(&snap1).expect("snapshot loads");
        assert_eq!(loaded, 2);
        assert_eq!(fresh.cached_fingerprints(), 2);
        let snap2 = fresh.snapshot_string();
        assert_eq!(snap1, snap2, "write→load→write must be byte-identical");
    }

    #[test]
    fn load_into_different_shard_count_keeps_all_entries() {
        let service = warm_service();
        let snap = service.snapshot_string();
        for shards in [1usize, 3, 8] {
            let mut s = Service::new(ServiceOptions { shards, ..ServiceOptions::default() });
            assert_eq!(s.load_snapshot(&snap).expect("loads"), 2);
            assert_eq!(s.snapshot_string(), snap, "shard count must not change snapshot bytes");
        }
    }

    #[test]
    fn large_instances_snapshot_as_binary_payloads() {
        use crate::cache::{prep_engine_of, prep_hash, Prepared};
        use psdp_core::DecisionOptions;
        // 600 diagonal constraints over dim 2 → total_nnz 1200 > threshold.
        let mats: Vec<PsdMatrix> = (0..600)
            .map(|i| PsdMatrix::Diagonal(vec![1.0 + (i % 7) as f64, 2.0 + (i % 3) as f64]))
            .collect();
        let inst = Arc::new(PackingInstance::new(mats).unwrap());
        let req =
            ServeRequest::decision("big", Arc::clone(&inst), 1.0, DecisionOptions::practical(0.2));
        let (engine_kind, seed) = prep_engine_of(&req.kind);
        let entry = CacheEntry {
            hash: prep_hash(&req),
            engine_kind,
            seed,
            prepared: Prepared::Packing {
                inst: Arc::clone(&inst),
                engine: Arc::new(psdp_expdot::Engine::new(engine_kind, inst.mats(), seed).unwrap()),
            },
            memo: Vec::new(),
            bracket: None,
            last_used: 0,
        };
        let cache = ShardedCache::new(1, 8);
        cache.insert(entry);
        let snap = write_snapshot(&cache);
        assert!(snap.contains("payload bin "), "large instance must use the binary payload");
        let entries = load_snapshot(&snap).expect("binary payload loads");
        assert_eq!(entries.len(), 1);
        let reloaded = ShardedCache::new(1, 8);
        for e in entries {
            reloaded.insert(e);
        }
        assert_eq!(write_snapshot(&reloaded), snap, "bin payload write→load→write fixpoint");
    }

    #[test]
    fn corrupted_snapshots_error_cleanly() {
        let service = warm_service();
        let snap = service.snapshot_string();
        let cases: Vec<String> = vec![
            String::new(),
            "garbage\n".to_string(),
            // Old (v1) and future snapshot versions are both rejected.
            snap.replace("psdp snapshot v2", "psdp snapshot v1"),
            snap.replace("psdp snapshot v2", "psdp snapshot v3"),
            snap.replace("entries 2", "entries 3"),
            snap.replace("family packing", "family quantum"),
            snap.replace("seed 0", "seed banana"),
            snap.replace("payload text", "payload braille"),
            // Flip a fingerprint hash digit.
            {
                let mut s = String::new();
                for line in snap.lines() {
                    if let Some(rest) = line.strip_prefix("hash ") {
                        let flipped: String =
                            rest.chars().map(|c| if c == '0' { '1' } else { '0' }).collect();
                        s.push_str(&format!("hash {flipped}\n"));
                    } else {
                        s.push_str(line);
                        s.push('\n');
                    }
                }
                s
            },
            // Truncate mid-entry.
            snap.lines().take(5).map(|l| format!("{l}\n")).collect(),
            // Perturb the first payload body line (breaks canonicality or
            // the fingerprint hash, whichever trips first).
            {
                let mut out = String::new();
                let mut poison_next = false;
                let mut poisoned = false;
                for line in snap.lines() {
                    if poison_next && !poisoned {
                        out.push_str(&format!("{line} junk\n"));
                        poisoned = true;
                    } else {
                        out.push_str(line);
                        out.push('\n');
                    }
                    poison_next = line.starts_with("payload ");
                }
                assert!(poisoned, "snapshot must contain a payload body");
                out
            },
        ];
        for (i, bad) in cases.iter().enumerate() {
            let mut s = Service::new(ServiceOptions::default());
            let res = s.load_snapshot(bad);
            assert!(res.is_err(), "case {i} should fail to load");
            assert_eq!(s.cached_fingerprints(), 0, "case {i} must leave the cache cold");
        }
    }

    #[test]
    fn duplicate_entries_are_rejected() {
        let service = warm_service();
        let snap = service.snapshot_string();
        // Duplicate the whole entry list: entries 4 with each entry twice.
        let mut lines = snap.lines();
        let header = lines.next().unwrap();
        let _count = lines.next().unwrap();
        let body: Vec<&str> = lines.collect();
        let doubled = format!("{header}\nentries 4\n{}\n{}\n", body.join("\n"), body.join("\n"));
        let mut s = Service::new(ServiceOptions::default());
        match s.load_snapshot(&doubled) {
            Err(SnapshotError::Verify { msg }) => assert!(msg.contains("duplicate")),
            other => panic!("expected duplicate-fingerprint verify error, got {other:?}"),
        }
    }

    #[test]
    fn engine_kinds_roundtrip_exactly() {
        let kinds = [
            EngineKind::Exact,
            EngineKind::Taylor { eps: 0.1 },
            EngineKind::TaylorJl { eps: 0.05, sketch_const: 4.0 },
            EngineKind::Expv { eps: 0.1 },
            EngineKind::Auto { eps: 0.3 },
        ];
        for kind in kinds {
            let body = render_engine(kind);
            let parsed = parse_engine(&body, 1).expect("parses");
            assert_eq!(parsed, kind);
        }
        assert!(parse_engine("taylor", 1).is_err());
        assert!(parse_engine("exact 3ff0000000000000", 1).is_err());
        assert!(parse_engine("warp 3ff0000000000000", 1).is_err());
    }

    #[test]
    fn warm_start_serves_without_prep_builds() {
        let service = warm_service();
        let snap = service.snapshot_string();
        let pack = Arc::new(
            PackingInstance::new(vec![
                PsdMatrix::Diagonal(vec![2.0, 0.0]),
                PsdMatrix::Diagonal(vec![0.0, 4.0]),
            ])
            .unwrap(),
        );
        let mut warm = Service::new(ServiceOptions::default());
        warm.load_snapshot(&snap).expect("loads");
        let items = vec![StreamItem::Execute {
            request: ServeRequest::optimize("c", pack, ApproxOptions::serving(0.1)),
            ctx: (),
        }];
        let report = warm.run_stream(items.into_iter(), |_, _| {});
        assert_eq!(report.prep_builds, 0, "warm-started fingerprint must not rebuild");
        assert_eq!(report.tiers.prep_reuses, 1);
    }
}
