//! Matrix functions of symmetric matrices via eigendecomposition.
//!
//! These are the "exact" reference implementations: `exp(A)`, `A^{1/2}`,
//! `A^{-1/2}` (pseudo-inverse on the range, as Appendix A needs for
//! `C^{-1/2}`), and the dense→factorized conversion `A = QQᵀ` that feeds
//! Theorem 4.1's vector engines.

use crate::eigen::{sym_eigen, SymEigen};
use crate::error::LinalgError;
use crate::mat::Mat;

/// `exp(A)` for symmetric `A`, via eigendecomposition (Section 2.1
/// definition: `f(A) = Σ f(λᵢ) vᵢvᵢᵀ`).
pub fn expm(a: &Mat) -> Result<Mat, LinalgError> {
    Ok(sym_eigen(a)?.apply_fn(f64::exp))
}

/// `exp(A)` reusing an existing eigendecomposition.
pub fn expm_from_eigen(eig: &SymEigen) -> Mat {
    eig.apply_fn(f64::exp)
}

/// Principal square root of a PSD matrix. Eigenvalues in `[-tol, 0)` are
/// clamped to 0 (numerical noise); more negative ones are an error.
pub fn sqrt_psd(a: &Mat, tol: f64) -> Result<Mat, LinalgError> {
    let eig = sym_eigen(a)?;
    check_psd_spectrum(&eig, tol)?;
    Ok(eig.apply_fn(|x| x.max(0.0).sqrt()))
}

/// Moore–Penrose inverse square root of a PSD matrix: eigenvalues below
/// `rank_tol * λmax` are treated as zero and inverted to zero. This is
/// exactly what Appendix A needs: the paper treats `C` "as having full rank"
/// after restricting to its support, and `A^{-1/2}` on the support is the
/// pseudo-inverse square root.
pub fn inv_sqrt_psd(a: &Mat, rank_tol: f64) -> Result<Mat, LinalgError> {
    let eig = sym_eigen(a)?;
    check_psd_spectrum(&eig, rank_tol)?;
    let lam_max = eig.lambda_max().max(0.0);
    let cut = rank_tol * lam_max.max(1e-300);
    Ok(eig.apply_fn(|x| if x > cut { 1.0 / x.sqrt() } else { 0.0 }))
}

/// Factor a PSD matrix as `A = Q Qᵀ` with `Q = [√λᵢ vᵢ]` over eigenvalues
/// above `rank_tol * λmax`. Returns the `m × r` factor (r = numerical rank).
///
/// This is the preprocessing step of Section 1.2 ("we can add a preprocessing
/// step that factors each Aᵢ") realized with an eigendecomposition, which is
/// also rank-revealing — important because application constraint matrices
/// are typically very low rank (rank 1–2 for beamforming/ellipse instances).
pub fn psd_factor(a: &Mat, rank_tol: f64) -> Result<Mat, LinalgError> {
    let eig = sym_eigen(a)?;
    check_psd_spectrum(&eig, rank_tol)?;
    let m = a.nrows();
    let lam_max = eig.lambda_max().max(0.0);
    let cut = rank_tol * lam_max.max(1e-300);
    let keep: Vec<usize> = (0..m).filter(|&j| eig.values[j] > cut && eig.values[j] > 0.0).collect();
    let mut q = Mat::zeros(m, keep.len().max(1));
    for (c, &j) in keep.iter().enumerate() {
        let s = eig.values[j].sqrt();
        for i in 0..m {
            q[(i, c)] = s * eig.vectors[(i, j)];
        }
    }
    Ok(q)
}

/// Validate that a spectrum is PSD up to `tol * max(1, λmax)` of negative
/// noise.
fn check_psd_spectrum(eig: &SymEigen, tol: f64) -> Result<(), LinalgError> {
    if eig.values.is_empty() {
        return Ok(());
    }
    let scale = eig.lambda_max().abs().max(1.0);
    let lmin = eig.lambda_min();
    if lmin < -tol.max(1e-10) * scale {
        return Err(LinalgError::NotPositiveDefinite { index: 0, pivot: lmin });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    #[test]
    fn expm_zero_is_identity() {
        let e = expm(&Mat::zeros(4, 4)).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((e[(i, j)] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn expm_diagonal() {
        let a = Mat::from_diag(&[0.0, 1.0, 2.0]);
        let e = expm(&a).unwrap();
        assert!((e[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((e[(1, 1)] - 1.0_f64.exp()).abs() < 1e-12);
        assert!((e[(2, 2)] - 2.0_f64.exp()).abs() < 1e-10);
        assert!(e[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn expm_commutes_with_similarity() {
        // exp of 2x2 rotationally-mixed matrix vs known closed form:
        // A = [[a, b], [b, a]] has eigenvalues a±b with eigenvectors
        // (1,1)/√2, (1,-1)/√2, so exp(A)_00 = (e^{a+b} + e^{a-b})/2.
        let (a, b) = (0.3, 0.7);
        let m = Mat::from_rows(&[&[a, b], &[b, a]]);
        let e = expm(&m).unwrap();
        let want00 = 0.5 * ((a + b).exp() + (a - b).exp());
        let want01 = 0.5 * ((a + b).exp() - (a - b).exp());
        assert!((e[(0, 0)] - want00).abs() < 1e-12);
        assert!((e[(0, 1)] - want01).abs() < 1e-12);
    }

    #[test]
    fn sqrt_of_square() {
        let mut a = Mat::from_fn(5, 5, |i, j| ((i + j) % 4) as f64 * 0.2);
        a.symmetrize();
        let aa = matmul(&a, &a); // PSD by construction
        let s = sqrt_psd(&aa, 1e-9).unwrap();
        let ss = matmul(&s, &s);
        for i in 0..5 {
            for j in 0..5 {
                assert!((ss[(i, j)] - aa[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn inv_sqrt_full_rank() {
        let a = Mat::from_diag(&[4.0, 9.0, 16.0]);
        let s = inv_sqrt_psd(&a, 1e-12).unwrap();
        assert!((s[(0, 0)] - 0.5).abs() < 1e-12);
        assert!((s[(1, 1)] - 1.0 / 3.0).abs() < 1e-12);
        assert!((s[(2, 2)] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn inv_sqrt_pseudo_inverse_on_rank_deficient() {
        // C = diag(4, 0): pseudo-inverse-sqrt is diag(1/2, 0).
        let a = Mat::from_diag(&[4.0, 0.0]);
        let s = inv_sqrt_psd(&a, 1e-9).unwrap();
        assert!((s[(0, 0)] - 0.5).abs() < 1e-12);
        assert!(s[(1, 1)].abs() < 1e-12);
    }

    #[test]
    fn psd_factor_reconstructs_and_reveals_rank() {
        // Rank-2 PSD matrix in R^4.
        let mut a = Mat::zeros(4, 4);
        a.rank1_update(2.0, &[1.0, 0.0, 1.0, 0.0]);
        a.rank1_update(3.0, &[0.0, 1.0, -1.0, 2.0]);
        let q = psd_factor(&a, 1e-9).unwrap();
        assert_eq!(q.ncols(), 2, "numerical rank should be 2");
        let rec = matmul(&q, &q.transpose());
        for i in 0..4 {
            for j in 0..4 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn funcs_reject_indefinite() {
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]); // eigenvalues ±1
        assert!(sqrt_psd(&a, 1e-9).is_err());
        assert!(inv_sqrt_psd(&a, 1e-9).is_err());
        assert!(psd_factor(&a, 1e-9).is_err());
    }
}
