//! # psdp-linalg
//!
//! Dense linear algebra for the `positive-sdp` workspace: the numeric
//! substrate that the paper (Peng–Tangwongsan–Zhang, SPAA 2012) assumes as
//! "standard matrix operations".
//!
//! Everything is implemented from scratch on `f64`:
//!
//! * [`mat::Mat`] — dense row-major matrices with elementwise ops,
//! * [`gemm`] — rayon-parallel GEMM / GEMV,
//! * [`eigen`] — symmetric eigendecomposition (Householder + implicit QL),
//! * [`chol`] — Cholesky and PSD certification,
//! * [`mod@qr`] — Householder QR / orthonormalization,
//! * [`funcs`] — matrix functions `exp`, `√`, pseudo `⁻¹ᐟ²`, PSD factorization,
//! * [`poly`] — the Lemma 4.2 truncated-Taylor operator applied to blocks,
//! * [`expmv`] — restarted-Lanczos / Chebyshev `exp(B)·x` without forming `exp(B)`,
//! * [`norms`] — spectral-norm estimation (power iteration + certified bounds),
//! * [`lanczos`] — Krylov extreme-eigenvalue estimation for large operators,
//! * [`op`] — the [`op::SymOp`] abstraction the engines are written against.
//!
//! The crate is deliberately dependency-light (rayon only) so every numeric
//! claim in the reproduction is auditable down to scalar loops.

#![warn(missing_docs)]

pub mod chol;
pub mod eigen;
pub mod error;
pub mod expmv;
pub mod funcs;
pub mod gemm;
pub mod lanczos;
pub mod mat;
pub mod norms;
pub mod op;
pub mod poly;
pub mod qr;
pub mod vecops;

pub use chol::{cholesky, is_positive_semidefinite, Cholesky};
pub use eigen::{sym_eigen, SymEigen};
pub use error::LinalgError;
pub use expmv::{chebyshev_exp_block, expm_action_chebyshev, expm_action_lanczos, ExpmAction};
pub use funcs::{expm, inv_sqrt_psd, psd_factor, sqrt_psd};
pub use gemm::{matmul, matvec, matvec_transpose, quad_form, symmul};
pub use lanczos::{lambda_max_lanczos, lanczos_extreme, LanczosResult};
pub use mat::Mat;
pub use norms::{lambda_max_estimate, lambda_max_power, lambda_max_upper_bound};
pub use op::SymOp;
pub use poly::{apply_exp_taylor_block, apply_exp_taylor_vec, taylor_degree};
pub use qr::{orthonormalize, qr, Qr};
