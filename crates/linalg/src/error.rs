//! Error type for the dense linear algebra kernels.

use std::fmt;

/// Errors surfaced by factorizations and iterative kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// An iterative method (QL eigensolver, power iteration) failed to
    /// converge within its iteration budget.
    NoConvergence {
        /// Which kernel failed.
        what: &'static str,
        /// Iterations spent before giving up.
        iters: usize,
    },
    /// Cholesky hit a non-positive pivot: the matrix is not (numerically)
    /// positive definite. Carries the offending pivot index and value.
    NotPositiveDefinite {
        /// Offending pivot index.
        index: usize,
        /// Offending pivot value.
        pivot: f64,
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Row count of the offending matrix.
        nrows: usize,
        /// Column count of the offending matrix.
        ncols: usize,
    },
    /// Input contained NaN or infinity.
    NotFinite,
    /// A matrix that must be (numerically) symmetric was not.
    NotSymmetric {
        /// Max absolute asymmetry observed.
        asymmetry: f64,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NoConvergence { what, iters } => {
                write!(f, "{what}: no convergence after {iters} iterations")
            }
            LinalgError::NotPositiveDefinite { index, pivot } => {
                write!(f, "matrix not positive definite: pivot {pivot:.3e} at index {index}")
            }
            LinalgError::NotSquare { nrows, ncols } => {
                write!(f, "expected square matrix, got {nrows}x{ncols}")
            }
            LinalgError::NotFinite => write!(f, "input contains NaN or infinite entries"),
            LinalgError::NotSymmetric { asymmetry } => {
                write!(f, "matrix not symmetric: max |A_ij - A_ji| = {asymmetry:.3e}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = LinalgError::NoConvergence { what: "tql2", iters: 60 };
        assert!(e.to_string().contains("tql2"));
        let e = LinalgError::NotPositiveDefinite { index: 3, pivot: -1.0 };
        assert!(e.to_string().contains("index 3"));
        let e = LinalgError::NotSquare { nrows: 2, ncols: 3 };
        assert!(e.to_string().contains("2x3"));
    }
}
