//! Cholesky factorization `A = L Lᵀ` for symmetric positive definite input,
//! plus a pivoted-free PSD variant used to factor constraint matrices.
//!
//! The solver pipeline uses Cholesky in two places: (1) as a cheap
//! positive-definiteness certificate in tests and verifiers, and (2) to turn
//! dense PSD constraint matrices into the factorized form `A = QQᵀ` that the
//! vector engines (Theorem 4.1) consume when an eigendecomposition would be
//! overkill.

use crate::error::LinalgError;
use crate::mat::Mat;

/// Lower-triangular Cholesky factor of a symmetric positive definite matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor; entries above the diagonal are zero.
    pub l: Mat,
}

impl Cholesky {
    /// Solve `A x = b` using the factorization (forward + back substitution).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.nrows();
        assert_eq!(b.len(), n, "cholesky solve: dim mismatch");
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for (j, &yj) in y.iter().enumerate().take(i) {
                s -= self.l[(i, j)] * yj;
            }
            y[i] = s / self.l[(i, i)];
        }
        // Backward: L^T x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                s -= self.l[(j, i)] * xj;
            }
            x[i] = s / self.l[(i, i)];
        }
        x
    }

    /// Log-determinant of `A` (`2 Σ log Lᵢᵢ`).
    pub fn log_det(&self) -> f64 {
        (0..self.l.nrows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Factor a symmetric positive **definite** matrix.
///
/// # Errors
/// [`LinalgError::NotPositiveDefinite`] if a pivot is `≤ 0` (up to a tiny
/// relative tolerance), [`LinalgError::NotSquare`]/[`NotFinite`] on malformed
/// input.
///
/// [`NotFinite`]: LinalgError::NotFinite
pub fn cholesky(a: &Mat) -> Result<Cholesky, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { nrows: a.nrows(), ncols: a.ncols() });
    }
    if !a.all_finite() {
        return Err(LinalgError::NotFinite);
    }
    let n = a.nrows();
    let mut l = Mat::zeros(n, n);
    for j in 0..n {
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { index: j, pivot: d });
        }
        let djj = d.sqrt();
        l[(j, j)] = djj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / djj;
        }
    }
    Ok(Cholesky { l })
}

/// True if `A` is numerically positive definite (Cholesky succeeds after a
/// relative diagonal shift of `shift_rel * max|A|`). With `shift_rel = 0`
/// this is a plain PD test; a small positive `shift_rel` turns it into a
/// PSD-up-to-tolerance test, which is what solution verifiers want.
pub fn is_positive_semidefinite(a: &Mat, shift_rel: f64) -> bool {
    let mut shifted = a.clone();
    let shift = shift_rel * a.max_abs().max(1.0);
    shifted.add_diag(shift);
    shifted.symmetrize();
    cholesky(&shifted).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    #[test]
    fn cholesky_known_3x3() {
        // Classic SPD example.
        let a = Mat::from_rows(&[&[4.0, 12.0, -16.0], &[12.0, 37.0, -43.0], &[-16.0, -43.0, 98.0]]);
        let c = cholesky(&a).unwrap();
        let want = Mat::from_rows(&[&[2.0, 0.0, 0.0], &[6.0, 1.0, 0.0], &[-8.0, 5.0, 3.0]]);
        for i in 0..3 {
            for j in 0..3 {
                assert!((c.l[(i, j)] - want[(i, j)]).abs() < 1e-12);
            }
        }
        // L L^T reconstructs A.
        let rec = matmul(&c.l, &c.l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn cholesky_solve() {
        let a = Mat::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let c = cholesky(&a).unwrap();
        let x = c.solve(&[8.0, 7.0]);
        // Verify A x = b.
        let b2 = crate::gemm::matvec(&a, &x);
        assert!((b2[0] - 8.0).abs() < 1e-12);
        assert!((b2[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(cholesky(&a), Err(LinalgError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn psd_test_accepts_semidefinite_with_shift() {
        // Rank-1 PSD matrix is not PD, but passes with a tolerance shift.
        let mut a = Mat::zeros(3, 3);
        a.rank1_update(1.0, &[1.0, 1.0, 1.0]);
        assert!(!is_positive_semidefinite(&a, 0.0));
        assert!(is_positive_semidefinite(&a, 1e-10));
        // A clearly indefinite matrix still fails.
        let b = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!(!is_positive_semidefinite(&b, 1e-10));
    }

    #[test]
    fn log_det_diagonal() {
        let a = Mat::from_diag(&[2.0, 3.0, 4.0]);
        let c = cholesky(&a).unwrap();
        assert!((c.log_det() - (24.0_f64).ln()).abs() < 1e-12);
    }
}
