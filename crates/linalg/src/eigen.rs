//! Symmetric eigendecomposition: Householder tridiagonalization (`tred2`)
//! followed by the implicit-shift QL iteration (`tql2`).
//!
//! This is the classical EISPACK pair (also the JAMA port), chosen because it
//! is `O(m³)`, unconditionally stable for symmetric input, and small enough
//! to audit line by line. It backs everything downstream that the paper
//! leaves to "standard" linear algebra:
//!
//! * the `Exact` engine for `exp(Φ) • A` (eigendecompose, exponentiate
//!   eigenvalues),
//! * `C^{-1/2}` in the Appendix-A normalization,
//! * dense→factorized conversion `A = (U√λ)(U√λ)ᵀ`,
//! * every feasibility verifier (`λmax(Σ xᵢAᵢ) ≤ 1`).
//!
//! Eigenvalues are returned in **ascending** order; column `j` of
//! [`SymEigen::vectors`] is the unit eigenvector for `values[j]`.

use crate::error::LinalgError;
use crate::mat::Mat;

/// Result of a symmetric eigendecomposition `A = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `j` pairs with `values[j]`.
    pub vectors: Mat,
}

impl SymEigen {
    /// Largest eigenvalue `λmax`.
    pub fn lambda_max(&self) -> f64 {
        *self.values.last().expect("empty spectrum")
    }

    /// Smallest eigenvalue `λmin`.
    pub fn lambda_min(&self) -> f64 {
        self.values[0]
    }

    /// Reconstruct `f(A) = V diag(f(λ)) Vᵀ` for a scalar function `f`.
    ///
    /// This is the paper's Section 2.1 definition of a matrix function. Cost
    /// is `O(m³)` (two dense multiplies folded into one accumulation).
    pub fn apply_fn(&self, f: impl Fn(f64) -> f64) -> Mat {
        let m = self.vectors.nrows();
        let mut out = Mat::zeros(m, m);
        // out = sum_j f(lambda_j) v_j v_j^T, accumulated column by column.
        for (j, &lam) in self.values.iter().enumerate() {
            let flam = f(lam);
            if flam == 0.0 {
                continue;
            }
            let v = self.vectors.col(j);
            out.rank1_update(flam, &v);
        }
        out.symmetrize();
        out
    }

    /// Reconstruct the original matrix (`f = identity`); used by tests.
    pub fn reconstruct(&self) -> Mat {
        self.apply_fn(|x| x)
    }
}

/// Maximum QL sweeps per eigenvalue before declaring failure.
const MAX_QL_ITERS: usize = 64;

/// Compute the eigendecomposition of a symmetric matrix.
///
/// ```
/// use psdp_linalg::{sym_eigen, Mat};
///
/// let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let eig = sym_eigen(&a)?;
/// assert!((eig.values[0] - 1.0).abs() < 1e-12);
/// assert!((eig.lambda_max() - 3.0).abs() < 1e-12);
/// // f(A) for any scalar f, e.g. the matrix exponential:
/// let e = eig.apply_fn(f64::exp);
/// assert!((e.trace() - (1f64.exp() + 3f64.exp())).abs() < 1e-10);
/// # Ok::<(), psdp_linalg::LinalgError>(())
/// ```
///
/// The input is validated to be square, finite, and symmetric to within
/// `1e-8 * max|A|`; the strictly-checked variant of downstream code should
/// call [`Mat::symmetrize`] first if it accumulated asymmetry.
///
/// # Errors
/// * [`LinalgError::NotSquare`] / [`LinalgError::NotFinite`] /
///   [`LinalgError::NotSymmetric`] on malformed input,
/// * [`LinalgError::NoConvergence`] if QL needs more than 64 sweeps for some
///   eigenvalue (does not happen for finite symmetric input in practice).
pub fn sym_eigen(a: &Mat) -> Result<SymEigen, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { nrows: a.nrows(), ncols: a.ncols() });
    }
    if !a.all_finite() {
        return Err(LinalgError::NotFinite);
    }
    let tol = 1e-8 * a.max_abs().max(1.0);
    let asym = a.asymmetry();
    if asym > tol {
        return Err(LinalgError::NotSymmetric { asymmetry: asym });
    }

    let n = a.nrows();
    if n == 0 {
        return Ok(SymEigen { values: vec![], vectors: Mat::zeros(0, 0) });
    }

    let mut v = a.clone();
    v.symmetrize();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    tred2(&mut v, &mut d, &mut e);
    tql2(&mut v, &mut d, &mut e)?;
    sort_ascending(&mut v, &mut d);
    Ok(SymEigen { values: d, vectors: v })
}

/// Householder reduction of `v` (symmetric, overwritten with the accumulated
/// orthogonal transform) to tridiagonal form: `d` receives the diagonal and
/// `e[1..]` the sub-diagonal. Port of EISPACK `tred2`.
fn tred2(v: &mut Mat, d: &mut [f64], e: &mut [f64]) {
    let n = v.nrows();
    for j in 0..n {
        d[j] = v[(n - 1, j)];
    }

    for i in (1..n).rev() {
        // Scale to avoid under/overflow.
        let mut scale = 0.0;
        let mut h = 0.0;
        for item in d.iter().take(i) {
            scale += item.abs();
        }
        if scale == 0.0 {
            e[i] = d[i - 1];
            for j in 0..i {
                d[j] = v[(i - 1, j)];
                v[(i, j)] = 0.0;
                v[(j, i)] = 0.0;
            }
        } else {
            // Generate the Householder vector.
            for item in d.iter_mut().take(i) {
                *item /= scale;
                h += *item * *item;
            }
            let f = d[i - 1];
            let mut g = h.sqrt();
            if f > 0.0 {
                g = -g;
            }
            e[i] = scale * g;
            h -= f * g;
            d[i - 1] = f - g;
            for item in e.iter_mut().take(i) {
                *item = 0.0;
            }

            // Apply the similarity transformation to the remaining rows.
            for j in 0..i {
                let f = d[j];
                v[(j, i)] = f;
                let mut g = e[j] + v[(j, j)] * f;
                for k in (j + 1)..i {
                    g += v[(k, j)] * d[k];
                    e[k] += v[(k, j)] * f;
                }
                e[j] = g;
            }
            let mut f = 0.0;
            for j in 0..i {
                e[j] /= h;
                f += e[j] * d[j];
            }
            let hh = f / (h + h);
            for j in 0..i {
                e[j] -= hh * d[j];
            }
            for j in 0..i {
                let f = d[j];
                let g = e[j];
                for k in j..i {
                    let upd = f * e[k] + g * d[k];
                    v[(k, j)] -= upd;
                }
                d[j] = v[(i - 1, j)];
                v[(i, j)] = 0.0;
            }
        }
        d[i] = h;
    }

    // Accumulate the orthogonal transformations.
    for i in 0..(n - 1) {
        v[(n - 1, i)] = v[(i, i)];
        v[(i, i)] = 1.0;
        let h = d[i + 1];
        if h != 0.0 {
            for k in 0..=i {
                d[k] = v[(k, i + 1)] / h;
            }
            for j in 0..=i {
                let mut g = 0.0;
                for k in 0..=i {
                    g += v[(k, i + 1)] * v[(k, j)];
                }
                for k in 0..=i {
                    let upd = g * d[k];
                    v[(k, j)] -= upd;
                }
            }
        }
        for k in 0..=i {
            v[(k, i + 1)] = 0.0;
        }
    }
    for j in 0..n {
        d[j] = v[(n - 1, j)];
        v[(n - 1, j)] = 0.0;
    }
    v[(n - 1, n - 1)] = 1.0;
    e[0] = 0.0;
}

/// Implicit-shift QL iteration on the tridiagonal (`d`, `e`), accumulating
/// rotations into `v`. Port of EISPACK `tql2` with an added iteration cap.
fn tql2(v: &mut Mat, d: &mut [f64], e: &mut [f64]) -> Result<(), LinalgError> {
    let n = d.len();
    if n == 1 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    let mut f = 0.0_f64;
    let mut tst1 = 0.0_f64;
    let eps = 2.0_f64.powi(-52);

    for l in 0..n {
        tst1 = tst1.max(d[l].abs() + e[l].abs());

        let mut iter = 0;
        loop {
            // Find small subdiagonal element.
            let mut m = l;
            while m < n {
                if e[m].abs() <= eps * tst1 {
                    break;
                }
                m += 1;
            }
            if m >= n {
                m = n - 1;
            }
            if m == l {
                break;
            }

            iter += 1;
            if iter > MAX_QL_ITERS {
                return Err(LinalgError::NoConvergence { what: "tql2", iters: iter });
            }

            // Compute the implicit (Wilkinson) shift.
            let g = d[l];
            let mut p = (d[l + 1] - g) / (2.0 * e[l]);
            let mut r = p.hypot(1.0);
            if p < 0.0 {
                r = -r;
            }
            d[l] = e[l] / (p + r);
            d[l + 1] = e[l] * (p + r);
            let dl1 = d[l + 1];
            let mut h = g - d[l];
            for item in d.iter_mut().take(n).skip(l + 2) {
                *item -= h;
            }
            f += h;

            // Implicit QL sweep.
            p = d[m];
            let mut c = 1.0_f64;
            let mut c2 = c;
            let mut c3 = c;
            let el1 = e[l + 1];
            let mut s = 0.0_f64;
            let mut s2 = 0.0_f64;
            for i in (l..m).rev() {
                c3 = c2;
                c2 = c;
                s2 = s;
                let g = c * e[i];
                h = c * p;
                r = p.hypot(e[i]);
                e[i + 1] = s * r;
                s = e[i] / r;
                c = p / r;
                p = c * d[i] - s * g;
                d[i + 1] = h + s * (c * g + s * d[i]);

                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    let h = v[(k, i + 1)];
                    v[(k, i + 1)] = s * v[(k, i)] + c * h;
                    v[(k, i)] = c * v[(k, i)] - s * h;
                }
            }
            p = -s * s2 * c3 * el1 * e[l] / dl1;
            e[l] = s * p;
            d[l] = c * p;

            if e[l].abs() <= eps * tst1 {
                break;
            }
        }
        d[l] += f;
        e[l] = 0.0;
    }
    Ok(())
}

/// Sort eigenvalues ascending, permuting eigenvector columns to match.
fn sort_ascending(v: &mut Mat, d: &mut [f64]) {
    let n = d.len();
    // Selection sort: O(n^2) swaps on columns, negligible next to the O(n^3)
    // factorization, and it keeps the column permutation simple.
    for i in 0..n {
        let mut k = i;
        for j in (i + 1)..n {
            if d[j] < d[k] {
                k = j;
            }
        }
        if k != i {
            d.swap(i, k);
            for r in 0..v.nrows() {
                let tmp = v[(r, i)];
                v[(r, i)] = v[(r, k)];
                v[(r, k)] = tmp;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    fn check_decomposition(a: &Mat, tol: f64) {
        let eig = sym_eigen(a).expect("eigen failed");
        let n = a.nrows();
        // Ascending order.
        for w in eig.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "values not sorted: {:?}", eig.values);
        }
        // Orthonormal columns: V^T V = I.
        let vtv = matmul(&eig.vectors.transpose(), &eig.vectors);
        for i in 0..n {
            for j in 0..n {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (vtv[(i, j)] - want).abs() < tol,
                    "V^T V not identity at ({i},{j}): {}",
                    vtv[(i, j)]
                );
            }
        }
        // Reconstruction: V diag(d) V^T = A.
        let rec = eig.reconstruct();
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (rec[(i, j)] - a[(i, j)]).abs() < tol * a.max_abs().max(1.0),
                    "reconstruction off at ({i},{j}): {} vs {}",
                    rec[(i, j)],
                    a[(i, j)]
                );
            }
        }
    }

    #[test]
    fn eigen_2x2_known() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eig = sym_eigen(&a).unwrap();
        assert!((eig.values[0] - 1.0).abs() < 1e-12);
        assert!((eig.values[1] - 3.0).abs() < 1e-12);
        check_decomposition(&a, 1e-10);
    }

    #[test]
    fn eigen_diagonal() {
        let a = Mat::from_diag(&[3.0, -1.0, 7.0, 0.0]);
        let eig = sym_eigen(&a).unwrap();
        assert_eq!(eig.values.len(), 4);
        let mut want = [3.0, -1.0, 7.0, 0.0];
        want.sort_by(f64::total_cmp);
        for (got, want) in eig.values.iter().zip(want.iter()) {
            assert!((got - want).abs() < 1e-12);
        }
        check_decomposition(&a, 1e-10);
    }

    #[test]
    fn eigen_identity_multiple() {
        // Repeated eigenvalues exercise the degenerate path.
        let a = Mat::identity(6).scaled(4.0);
        let eig = sym_eigen(&a).unwrap();
        for v in &eig.values {
            assert!((v - 4.0).abs() < 1e-12);
        }
        check_decomposition(&a, 1e-10);
    }

    #[test]
    fn eigen_rank_one() {
        // vv^T has one nonzero eigenvalue = ||v||^2.
        let v = [1.0, 2.0, -1.0, 0.5];
        let mut a = Mat::zeros(4, 4);
        a.rank1_update(1.0, &v);
        let eig = sym_eigen(&a).unwrap();
        let norm2: f64 = v.iter().map(|x| x * x).sum();
        assert!((eig.lambda_max() - norm2).abs() < 1e-10);
        for &lam in &eig.values[..3] {
            assert!(lam.abs() < 1e-10);
        }
        check_decomposition(&a, 1e-9);
    }

    #[test]
    fn eigen_pseudo_random_sizes() {
        // Deterministic pseudo-random symmetric matrices across sizes,
        // including ones large enough to stress the QL sweeps.
        for &n in &[1usize, 2, 3, 5, 8, 13, 24, 40] {
            let mut a = Mat::from_fn(n, n, |i, j| ((i * 37 + j * 17 + 11) % 29) as f64 / 7.0 - 2.0);
            a.symmetrize();
            check_decomposition(&a, 1e-7);
        }
    }

    #[test]
    fn eigen_trace_equals_sum_of_values() {
        let mut a = Mat::from_fn(12, 12, |i, j| ((i * 7 + j * 13) % 10) as f64 / 3.0);
        a.symmetrize();
        let eig = sym_eigen(&a).unwrap();
        let sum: f64 = eig.values.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-8);
    }

    #[test]
    fn eigen_rejects_asymmetric() {
        let a = Mat::from_rows(&[&[1.0, 5.0], &[0.0, 1.0]]);
        assert!(matches!(sym_eigen(&a), Err(LinalgError::NotSymmetric { .. })));
    }

    #[test]
    fn eigen_rejects_nonsquare_and_nan() {
        let a = Mat::zeros(2, 3);
        assert!(matches!(sym_eigen(&a), Err(LinalgError::NotSquare { .. })));
        let mut b = Mat::identity(2);
        b[(0, 0)] = f64::NAN;
        assert!(matches!(sym_eigen(&b), Err(LinalgError::NotFinite)));
    }

    #[test]
    fn eigen_empty_matrix() {
        let a = Mat::zeros(0, 0);
        let eig = sym_eigen(&a).unwrap();
        assert!(eig.values.is_empty());
    }

    #[test]
    fn apply_fn_exponential_diagonal() {
        let a = Mat::from_diag(&[0.0, 1.0, -1.0]);
        let eig = sym_eigen(&a).unwrap();
        let e = eig.apply_fn(f64::exp);
        // exp of a diagonal matrix exponentiates the diagonal.
        let diag_want = [1.0, std::f64::consts::E, 1.0 / std::f64::consts::E];
        // Note: apply_fn returns entries in the original basis.
        let mut got: Vec<f64> = (0..3).map(|i| e[(i, i)]).collect();
        got.sort_by(f64::total_cmp);
        let mut want = diag_want.to_vec();
        want.sort_by(f64::total_cmp);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }
}
