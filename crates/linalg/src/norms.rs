//! Spectral-norm and extreme-eigenvalue estimation for symmetric matrices.
//!
//! The Taylor engine needs an upper bound `κ ≥ ‖Φ‖₂` to pick its polynomial
//! degree (Lemma 4.2), and the practical solver uses `λmax(Σ xᵢAᵢ)` both for
//! certificate checks and for adaptive degree selection. Power iteration on a
//! symmetric PSD matrix converges to `λmax` geometrically with ratio
//! `λ₂/λ₁`; we run it with a deterministic start vector and return a small
//! multiplicative safety margin where a *bound* (not an estimate) is needed.

use crate::gemm::matvec;
use crate::mat::Mat;
use crate::vecops;

/// Result of a power-iteration run.
#[derive(Debug, Clone, Copy)]
pub struct PowerIterResult {
    /// Rayleigh-quotient estimate of the dominant eigenvalue.
    pub value: f64,
    /// Iterations performed.
    pub iters: usize,
    /// Final residual `‖Av − λv‖₂`.
    pub residual: f64,
}

/// Estimate `λmax(A)` of a symmetric PSD matrix by power iteration.
///
/// Deterministic: starts from a fixed quasi-random unit vector. For PSD `A`
/// the Rayleigh quotient underestimates `λmax`, so callers needing a bound
/// should use [`lambda_max_upper_bound`].
pub fn lambda_max_power(a: &Mat, max_iters: usize, rel_tol: f64) -> PowerIterResult {
    assert!(a.is_square());
    let n = a.nrows();
    if n == 0 {
        return PowerIterResult { value: 0.0, iters: 0, residual: 0.0 };
    }
    // Fixed pseudo-random start to avoid pathological orthogonality with the
    // dominant eigenvector (an all-ones start is orthogonal to it for e.g.
    // difference matrices).
    let mut v: Vec<f64> = (0..n)
        .map(|i| {
            let x = ((i.wrapping_mul(2654435761)) % 1000) as f64 / 1000.0;
            x + 0.5
        })
        .collect();
    vecops::normalize(&mut v);

    let mut lam = 0.0;
    let mut iters = 0;
    let mut residual = f64::INFINITY;
    for it in 0..max_iters {
        iters = it + 1;
        let mut w = matvec(a, &v);
        let new_lam = vecops::dot(&w, &v);
        // Residual ||Av - lam v||.
        let mut r = w.clone();
        vecops::axpy(-new_lam, &v, &mut r);
        residual = vecops::norm2(&r);
        let wn = vecops::normalize(&mut w);
        if wn == 0.0 {
            // A v = 0: v is in the kernel; matrix may be 0 in this subspace.
            return PowerIterResult { value: 0.0, iters, residual: 0.0 };
        }
        v = w;
        let denom = new_lam.abs().max(1e-300);
        if (new_lam - lam).abs() <= rel_tol * denom && residual <= rel_tol.sqrt() * denom {
            lam = new_lam;
            break;
        }
        lam = new_lam;
    }
    PowerIterResult { value: lam, iters, residual }
}

/// A cheap certified **upper bound** on `λmax(A)` for symmetric `A`:
/// `min(max row sum of |entries| (Gershgorin), Frobenius norm)`.
pub fn lambda_max_upper_bound(a: &Mat) -> f64 {
    assert!(a.is_square());
    let n = a.nrows();
    let mut gersh: f64 = 0.0;
    for i in 0..n {
        let row_sum: f64 = a.row(i).iter().map(|x| x.abs()).sum();
        gersh = gersh.max(row_sum);
    }
    gersh.min(a.fro_norm())
}

/// Practical `λmax` estimate for PSD matrices: power iteration sharpened by a
/// safety factor, clamped by the certified upper bound. Returns a value
/// guaranteed `≥ λmax/(1+margin)` in the typical case and never above the
/// Gershgorin/Frobenius bound.
pub fn lambda_max_estimate(a: &Mat) -> f64 {
    let ub = lambda_max_upper_bound(a);
    if ub == 0.0 {
        return 0.0;
    }
    let est = lambda_max_power(a, 100, 1e-6).value;
    // Power iteration underestimates; pad by 2% and clamp to the hard bound.
    (est * 1.02).min(ub).max(est)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::sym_eigen;

    #[test]
    fn power_iteration_diagonal() {
        let a = Mat::from_diag(&[1.0, 5.0, 3.0]);
        let r = lambda_max_power(&a, 200, 1e-12);
        assert!((r.value - 5.0).abs() < 1e-6, "got {}", r.value);
    }

    #[test]
    fn power_iteration_matches_eigensolver() {
        let mut a = Mat::from_fn(10, 10, |i, j| ((i * 13 + j * 7) % 10) as f64);
        a.symmetrize();
        // Make PSD by shifting.
        let eig = sym_eigen(&a).unwrap();
        let shift = -eig.lambda_min() + 0.5;
        a.add_diag(shift);
        let true_max = sym_eigen(&a).unwrap().lambda_max();
        let est = lambda_max_power(&a, 500, 1e-10).value;
        assert!((est - true_max).abs() / true_max < 1e-6, "est {est} true {true_max}");
    }

    #[test]
    fn upper_bound_really_bounds() {
        for &n in &[2usize, 5, 9] {
            let mut a = Mat::from_fn(n, n, |i, j| ((i + 2 * j) % 7) as f64 - 3.0);
            a.symmetrize();
            let ub = lambda_max_upper_bound(&a);
            let lm = sym_eigen(&a).unwrap().lambda_max();
            assert!(ub + 1e-12 >= lm, "ub {ub} < lambda_max {lm}");
        }
    }

    #[test]
    fn estimate_between_truth_and_bound() {
        let mut a = Mat::from_fn(8, 8, |i, j| ((i * 3 + j * 5) % 6) as f64 * 0.3);
        a.symmetrize();
        let eig = sym_eigen(&a).unwrap();
        a.add_diag(-eig.lambda_min() + 0.1);
        let lm = sym_eigen(&a).unwrap().lambda_max();
        let est = lambda_max_estimate(&a);
        assert!(est >= 0.95 * lm, "est {est} too far below {lm}");
        assert!(est <= lambda_max_upper_bound(&a) + 1e-12);
    }

    #[test]
    fn zero_matrix() {
        let a = Mat::zeros(4, 4);
        assert_eq!(lambda_max_power(&a, 10, 1e-6).value, 0.0);
        assert_eq!(lambda_max_upper_bound(&a), 0.0);
        assert_eq!(lambda_max_estimate(&a), 0.0);
    }
}
