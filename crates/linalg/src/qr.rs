//! Householder QR factorization `A = Q R`.
//!
//! The paper's preprocessing remark (Section 1.2) factors constraint matrices
//! with "standard parallel QR"; we provide the sequential Householder kernel
//! (the sizes we factor are small) plus helpers used by the workload
//! generators to produce random orthogonal bases.

use crate::mat::Mat;

/// QR factorization with `Q` orthonormal (`m × n`, thin) and `R` upper
/// triangular (`n × n`), for `m ≥ n`.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Thin orthonormal factor.
    pub q: Mat,
    /// Upper-triangular factor.
    pub r: Mat,
}

/// Compute the thin QR factorization of `a` (`m × n`, `m ≥ n`).
///
/// # Panics
/// Panics if `m < n`.
pub fn qr(a: &Mat) -> Qr {
    let (m, n) = (a.nrows(), a.ncols());
    assert!(m >= n, "qr: need nrows >= ncols, got {m}x{n}");

    // Work on a copy; store Householder vectors in-place below the diagonal.
    let mut r = a.clone();
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);

    for k in 0..n {
        // Build the Householder vector for column k.
        let mut v: Vec<f64> = (k..m).map(|i| r[(i, k)]).collect();
        let alpha = -v[0].signum() * crate::vecops::norm2(&v);
        if alpha == 0.0 {
            // Column already zero below (and at) the diagonal; identity reflector.
            vs.push(vec![0.0; m - k]);
            continue;
        }
        v[0] -= alpha;
        let vnorm = crate::vecops::norm2(&v);
        if vnorm > 0.0 {
            crate::vecops::scale(1.0 / vnorm, &mut v);
        }
        // Apply H = I - 2vv^T to the trailing submatrix.
        for j in k..n {
            let mut s = 0.0;
            for i in k..m {
                s += v[i - k] * r[(i, j)];
            }
            s *= 2.0;
            for i in k..m {
                r[(i, j)] -= s * v[i - k];
            }
        }
        vs.push(v);
    }

    // Extract R (upper triangular n x n).
    let mut rr = Mat::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            rr[(i, j)] = r[(i, j)];
        }
    }

    // Form thin Q by applying reflectors to the first n columns of I.
    let mut q = Mat::zeros(m, n);
    for j in 0..n {
        q[(j, j)] = 1.0;
    }
    for k in (0..n).rev() {
        let v = &vs[k];
        if v.iter().all(|&x| x == 0.0) {
            continue;
        }
        for j in 0..n {
            let mut s = 0.0;
            for i in k..m {
                s += v[i - k] * q[(i, j)];
            }
            s *= 2.0;
            for i in k..m {
                q[(i, j)] -= s * v[i - k];
            }
        }
    }

    Qr { q, r: rr }
}

/// Orthonormalize the columns of `a` (thin Q of its QR factorization).
pub fn orthonormalize(a: &Mat) -> Mat {
    qr(a).q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    fn check_qr(a: &Mat, tol: f64) {
        let f = qr(a);
        let n = a.ncols();
        // Q^T Q = I
        let qtq = matmul(&f.q.transpose(), &f.q);
        for i in 0..n {
            for j in 0..n {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((qtq[(i, j)] - want).abs() < tol, "QtQ({i},{j}) = {}", qtq[(i, j)]);
            }
        }
        // R upper triangular
        for i in 0..n {
            for j in 0..i {
                assert_eq!(f.r[(i, j)], 0.0);
            }
        }
        // QR = A
        let rec = matmul(&f.q, &f.r);
        for i in 0..a.nrows() {
            for j in 0..n {
                assert!(
                    (rec[(i, j)] - a[(i, j)]).abs() < tol * a.max_abs().max(1.0),
                    "QR != A at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn qr_square() {
        let a = Mat::from_rows(&[&[12.0, -51.0, 4.0], &[6.0, 167.0, -68.0], &[-4.0, 24.0, -41.0]]);
        check_qr(&a, 1e-10);
    }

    #[test]
    fn qr_tall() {
        let a = Mat::from_fn(7, 3, |i, j| ((i * 3 + j * 5) % 11) as f64 - 5.0);
        check_qr(&a, 1e-10);
    }

    #[test]
    fn qr_rank_deficient_column() {
        // Second column is a multiple of the first; R(1,1) should be ~0 and
        // the factorization should still reconstruct A.
        let a = Mat::from_rows(&[&[1.0, 2.0], &[1.0, 2.0], &[1.0, 2.0]]);
        let f = qr(&a);
        assert!(f.r[(1, 1)].abs() < 1e-12);
        let rec = matmul(&f.q, &f.r);
        for i in 0..3 {
            for j in 0..2 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn orthonormalize_gives_unit_columns() {
        let a = Mat::from_fn(5, 2, |i, j| (i + j + 1) as f64);
        let q = orthonormalize(&a);
        for j in 0..2 {
            let c = q.col(j);
            assert!((crate::vecops::norm2(&c) - 1.0).abs() < 1e-12);
        }
    }
}
