//! Abstract symmetric linear operators.
//!
//! The Taylor engine only ever *applies* `Φ` to blocks of vectors, so it is
//! written against this trait instead of a concrete matrix type. Dense
//! matrices implement it here; sparse CSR matrices and the solver's
//! "sum of factorized constraints" operator implement it in their own crates.

use crate::gemm::{matmul, matvec};
use crate::mat::Mat;

/// A symmetric linear operator on `R^dim`.
///
/// Implementations must be `Sync` so blocks can be applied from rayon tasks.
pub trait SymOp: Sync {
    /// Dimension `m` of the (square) operator.
    fn dim(&self) -> usize;

    /// `y = A x`.
    fn apply_vec(&self, x: &[f64]) -> Vec<f64>;

    /// `Y = A X` for a block `X` (`dim × r`). Default loops over columns;
    /// dense implementations override with a single GEMM.
    fn apply_block(&self, x: &Mat) -> Mat {
        assert_eq!(x.nrows(), self.dim(), "apply_block: dim mismatch");
        let mut out = Mat::zeros(self.dim(), x.ncols());
        for j in 0..x.ncols() {
            let col = x.col(j);
            let y = self.apply_vec(&col);
            out.set_col(j, &y);
        }
        out
    }

    /// Number of nonzero entries used by one application (work accounting).
    fn nnz(&self) -> usize {
        self.dim() * self.dim()
    }
}

impl SymOp for Mat {
    fn dim(&self) -> usize {
        assert!(self.is_square(), "SymOp requires a square matrix");
        self.nrows()
    }

    fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        matvec(self, x)
    }

    fn apply_block(&self, x: &Mat) -> Mat {
        matmul(self, x)
    }

    fn nnz(&self) -> usize {
        self.as_slice().iter().filter(|&&v| v != 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_symop_applies() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        assert_eq!(a.dim(), 2);
        assert_eq!(a.apply_vec(&[1.0, 0.0]), vec![2.0, 1.0]);
        let x = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let y = a.apply_block(&x);
        assert_eq!(y[(0, 0)], 2.0);
        assert_eq!(y[(1, 1)], 3.0);
    }

    #[test]
    fn default_block_impl_matches_dense() {
        // Wrap a Mat so the default (column-by-column) path is exercised.
        struct Wrapper(Mat);
        impl SymOp for Wrapper {
            fn dim(&self) -> usize {
                self.0.nrows()
            }
            fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
                matvec(&self.0, x)
            }
        }
        let mut a = Mat::from_fn(5, 5, |i, j| (i * j) as f64);
        a.symmetrize();
        let x = Mat::from_fn(5, 3, |i, j| (i + j) as f64);
        let via_default = Wrapper(a.clone()).apply_block(&x);
        let via_gemm = a.apply_block(&x);
        for i in 0..5 {
            for j in 0..3 {
                assert!((via_default[(i, j)] - via_gemm[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn nnz_counts_nonzeros() {
        let a = Mat::from_diag(&[1.0, 0.0, 2.0]);
        assert_eq!(SymOp::nnz(&a), 2);
    }
}
