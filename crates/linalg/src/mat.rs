//! Dense row-major matrix type and elementwise/structural operations.
//!
//! `Mat` is the workhorse dense type for the whole workspace: the SDP solver
//! accumulates `Ψ(t) = Σ xᵢAᵢ` into a `Mat`, the eigensolver factors `Mat`s,
//! and the Taylor engine multiplies blocks of vectors stored as `Mat`s.
//!
//! Storage is row-major `Vec<f64>`; entry `(i, j)` lives at `i * ncols + j`.
//! Rows are therefore contiguous, which is what the parallel kernels in
//! [`crate::gemm`] split on.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Mat {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Create an `nrows × ncols` zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Mat { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            nrows * ncols,
            "from_vec: data length {} != {}x{}",
            data.len(),
            nrows,
            ncols
        );
        Mat { nrows, ncols, data }
    }

    /// Create a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = if nrows == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Mat { nrows, ncols, data }
    }

    /// Create a diagonal matrix from its diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Mat::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Build an `nrows × ncols` matrix by calling `f(i, j)` for each entry.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                data.push(f(i, j));
            }
        }
        Mat { nrows, ncols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Borrow the raw row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the raw row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix and return the raw row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.nrows);
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutably borrow row `i` as a contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.nrows);
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.ncols);
        (0..self.nrows).map(|i| self[(i, j)]).collect()
    }

    /// Set column `j` from a slice.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert_eq!(v.len(), self.nrows);
        for i in 0..self.nrows {
            self[(i, j)] = v[i];
        }
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Sum of diagonal entries.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.nrows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius inner product `A • B = Σᵢⱼ AᵢⱼBᵢⱼ = Tr(AᵀB)`.
    ///
    /// For symmetric `A`, `B` this is the `•` of the paper: `Tr(AB)`.
    pub fn dot(&self, other: &Mat) -> f64 {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols), "dot: shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Max absolute entry (∞-norm on entries, not the operator ∞-norm).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, x| acc.max(x.abs()))
    }

    /// `self += alpha * other` (elementwise AXPY).
    pub fn axpy(&mut self, alpha: f64, other: &Mat) {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols), "axpy: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiply every entry by `alpha` in place.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Return `alpha * self` as a new matrix.
    pub fn scaled(&self, alpha: f64) -> Mat {
        let mut m = self.clone();
        m.scale(alpha);
        m
    }

    /// Return `self + other`.
    pub fn add(&self, other: &Mat) -> Mat {
        let mut m = self.clone();
        m.axpy(1.0, other);
        m
    }

    /// Return `self - other`.
    pub fn sub(&self, other: &Mat) -> Mat {
        let mut m = self.clone();
        m.axpy(-1.0, other);
        m
    }

    /// `self += alpha * I` (shift the diagonal).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn add_diag(&mut self, alpha: f64) {
        assert!(self.is_square(), "add_diag on non-square matrix");
        for i in 0..self.nrows {
            self[(i, i)] += alpha;
        }
    }

    /// Replace `self` with `(self + selfᵀ)/2`, forcing exact symmetry.
    ///
    /// Numeric pipelines accumulate tiny asymmetries; the eigensolver and the
    /// PSD verifiers assume exact symmetry, so call this at trust boundaries.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize on non-square matrix");
        for i in 0..self.nrows {
            for j in (i + 1)..self.ncols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Maximum asymmetry `maxᵢⱼ |Aᵢⱼ − Aⱼᵢ|`; 0 for exactly symmetric input.
    pub fn asymmetry(&self) -> f64 {
        assert!(self.is_square());
        let mut worst: f64 = 0.0;
        for i in 0..self.nrows {
            for j in (i + 1)..self.ncols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// True if every entry is finite (no NaN/inf).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Extract the square submatrix indexed by `idx` (rows and columns).
    pub fn principal_submatrix(&self, idx: &[usize]) -> Mat {
        assert!(self.is_square());
        let k = idx.len();
        let mut s = Mat::zeros(k, k);
        for (a, &i) in idx.iter().enumerate() {
            for (b, &j) in idx.iter().enumerate() {
                s[(a, b)] = self[(i, j)];
            }
        }
        s
    }

    /// Rank-1 update `self += alpha * v vᵀ`.
    pub fn rank1_update(&mut self, alpha: f64, v: &[f64]) {
        assert!(self.is_square());
        assert_eq!(v.len(), self.nrows);
        let n = self.ncols;
        for i in 0..self.nrows {
            let avi = alpha * v[i];
            let row = &mut self.data[i * n..(i + 1) * n];
            for (r, &vj) in row.iter_mut().zip(v) {
                *r += avi * vj;
            }
        }
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i * self.ncols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i * self.ncols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.nrows, self.ncols)?;
        let show_rows = self.nrows.min(8);
        for i in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.ncols.min(8);
            for j in 0..show_cols {
                write!(f, "{:>12.5e}", self[(i, j)])?;
                if j + 1 < show_cols {
                    write!(f, ", ")?;
                }
            }
            if self.ncols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.nrows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Mat::zeros(3, 4);
        assert_eq!(z.nrows(), 3);
        assert_eq!(z.ncols(), 4);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Mat::identity(3);
        assert_eq!(i.trace(), 3.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn trace_and_dot() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 5.0]]);
        let b = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.trace(), 6.0);
        // A • I = Tr A
        assert_eq!(a.dot(&b), a.trace());
        // A • A = ||A||_F^2
        assert!((a.dot(&a) - a.fro_norm().powi(2)).abs() < 1e-12);
    }

    #[test]
    fn axpy_scale_add_sub() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::identity(2);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c[(0, 0)], 3.0);
        assert_eq!(c[(0, 1)], 2.0);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.scaled(2.0)[(1, 1)], 8.0);
    }

    #[test]
    fn symmetrize_and_asymmetry() {
        let mut m = Mat::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]);
        assert_eq!(m.asymmetry(), 2.0);
        m.symmetrize();
        assert_eq!(m.asymmetry(), 0.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn rank1_update_matches_outer_product() {
        let mut m = Mat::zeros(3, 3);
        let v = [1.0, -2.0, 0.5];
        m.rank1_update(2.0, &v);
        for i in 0..3 {
            for j in 0..3 {
                assert!((m[(i, j)] - 2.0 * v[i] * v[j]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn principal_submatrix_picks_entries() {
        let m = Mat::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.principal_submatrix(&[1, 3]);
        assert_eq!(s[(0, 0)], m[(1, 1)]);
        assert_eq!(s[(0, 1)], m[(1, 3)]);
        assert_eq!(s[(1, 0)], m[(3, 1)]);
        assert_eq!(s[(1, 1)], m[(3, 3)]);
    }

    #[test]
    fn from_diag_and_add_diag() {
        let mut m = Mat::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(m.trace(), 6.0);
        m.add_diag(1.0);
        assert_eq!(m.trace(), 9.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_bad_length() {
        let _ = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }
}
