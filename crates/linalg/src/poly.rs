//! Truncated Taylor approximation of the matrix exponential applied to
//! vector blocks (Lemma 4.2 / Arora–Kale Lemma 6).
//!
//! For PSD `B` with `‖B‖₂ ≤ κ`, the operator
//!
//! ```text
//!   p(B) = Σ_{0 ≤ i < k} Bⁱ/i!,   k = max(⌈e²κ⌉, ⌈ln(2ε⁻¹)⌉)
//! ```
//!
//! satisfies `(1−ε) exp(B) ⪯ p(B) ⪯ exp(B)`. We never materialize `p(B)`:
//! the engines apply it to a block `X` with the forward recurrence
//! `T₀ = X`, `T_{j+1} = B·T_j/(j+1)`, `p(B)X = Σ T_j`, costing `k` operator
//! applications. All Taylor terms of a PSD argument are PSD, so the series
//! has no sign cancellation in the spectral sense.

use crate::mat::Mat;
use crate::op::SymOp;

/// Degree rule of Lemma 4.2: `k = max(⌈e²κ⌉, ⌈ln(2/ε)⌉)`, at least 1.
///
/// `kappa` must be an upper bound on `‖B‖₂`; `eps ∈ (0,1)` is the allowed
/// one-sided relative error.
pub fn taylor_degree(kappa: f64, eps: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0, "taylor_degree: eps must be in (0,1)");
    assert!(kappa >= 0.0 && kappa.is_finite(), "taylor_degree: bad kappa {kappa}");
    let e2k = (std::f64::consts::E * std::f64::consts::E * kappa).ceil();
    let log_term = (2.0 / eps).ln().ceil();
    (e2k.max(log_term) as usize).max(1)
}

/// Apply `p(B) = Σ_{i<k} Bⁱ/i!` to the block `x` (`dim × r`).
///
/// Returns `p(B)·x`. `degree` is the number of terms `k` (so `degree = 1`
/// returns `x` itself).
pub fn apply_exp_taylor_block(op: &dyn SymOp, x: &Mat, degree: usize) -> Mat {
    assert!(degree >= 1, "need at least the constant term");
    assert_eq!(x.nrows(), op.dim(), "apply_exp_taylor_block: dim mismatch");
    let mut acc = x.clone();
    let mut term = x.clone();
    for j in 1..degree {
        term = op.apply_block(&term);
        term.scale(1.0 / j as f64);
        acc.axpy(1.0, &term);
    }
    acc
}

/// Apply `p(B)` to a single vector (convenience wrapper).
pub fn apply_exp_taylor_vec(op: &dyn SymOp, x: &[f64], degree: usize) -> Vec<f64> {
    assert!(degree >= 1);
    let mut acc = x.to_vec();
    let mut term = x.to_vec();
    for j in 1..degree {
        term = op.apply_vec(&term);
        crate::vecops::scale(1.0 / j as f64, &mut term);
        crate::vecops::axpy(1.0, &term, &mut acc);
    }
    acc
}

/// Materialize `p(B)` as a dense matrix by applying it to the identity.
/// Only used by tests and the no-sketch Taylor engine at small `m`.
pub fn exp_taylor_dense(op: &dyn SymOp, degree: usize) -> Mat {
    apply_exp_taylor_block(op, &Mat::identity(op.dim()), degree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::sym_eigen;
    use crate::funcs::expm;

    #[test]
    fn degree_rule_matches_lemma() {
        // kappa large: e^2 * kappa dominates.
        let k = taylor_degree(10.0, 0.5);
        assert_eq!(k, (std::f64::consts::E * std::f64::consts::E * 10.0).ceil() as usize);
        // kappa ~ 0: log term dominates.
        let k = taylor_degree(0.0, 1e-6);
        assert_eq!(k, (2e6_f64).ln().ceil() as usize);
        assert!(taylor_degree(0.0, 0.9) >= 1);
    }

    #[test]
    fn degree_one_is_identity_operator() {
        let b = Mat::from_diag(&[1.0, 2.0]);
        let x = Mat::from_rows(&[&[1.0], &[1.0]]);
        let y = apply_exp_taylor_block(&b, &x, 1);
        assert_eq!(y[(0, 0)], 1.0);
        assert_eq!(y[(1, 0)], 1.0);
    }

    #[test]
    fn taylor_approximates_exp_scalar_case() {
        // 1x1 matrix: p(b) must sit in [(1-eps) e^b, e^b].
        for &bval in &[0.0, 0.5, 1.0, 3.0, 6.0] {
            for &eps in &[0.3, 0.1, 0.01] {
                let b = Mat::from_diag(&[bval]);
                let k = taylor_degree(bval, eps);
                let p = exp_taylor_dense(&b, k)[(0, 0)];
                let truth = bval.exp();
                assert!(p <= truth * (1.0 + 1e-12), "p {p} > exp {truth}");
                assert!(p >= truth * (1.0 - eps), "p {p} < (1-eps) exp {truth}");
            }
        }
    }

    #[test]
    fn taylor_spectral_sandwich_psd_matrix() {
        // Random-ish PSD matrix with ||B|| <= kappa: check the Loewner
        // sandwich (1-eps) exp(B) <= p(B) <= exp(B) via eigenvalues of the
        // differences.
        let mut b = Mat::from_fn(6, 6, |i, j| ((i * 5 + j * 3) % 7) as f64 * 0.1);
        b.symmetrize();
        // Shift to PSD.
        let eig = sym_eigen(&b).unwrap();
        b.add_diag(-eig.lambda_min().min(0.0) + 0.05);
        let kappa = sym_eigen(&b).unwrap().lambda_max();
        let eps = 0.1;
        let k = taylor_degree(kappa, eps);
        let p = exp_taylor_dense(&b, k);
        let e = expm(&b).unwrap();

        // exp(B) - p(B) should be PSD.
        let mut diff_hi = e.sub(&p);
        diff_hi.symmetrize();
        let lmin_hi = sym_eigen(&diff_hi).unwrap().lambda_min();
        assert!(lmin_hi > -1e-8 * e.max_abs(), "p(B) exceeded exp(B): {lmin_hi}");

        // p(B) - (1-eps) exp(B) should be PSD.
        let mut diff_lo = p.sub(&e.scaled(1.0 - eps));
        diff_lo.symmetrize();
        let lmin_lo = sym_eigen(&diff_lo).unwrap().lambda_min();
        assert!(lmin_lo > -1e-8 * e.max_abs(), "p(B) below (1-eps) exp(B): {lmin_lo}");
    }

    #[test]
    fn block_and_vec_agree() {
        let mut b = Mat::from_fn(5, 5, |i, j| ((i + j) % 3) as f64 * 0.2);
        b.symmetrize();
        b.add_diag(1.0);
        let x = Mat::from_fn(5, 2, |i, j| (i + 2 * j) as f64 * 0.1);
        let y = apply_exp_taylor_block(&b, &x, 8);
        for j in 0..2 {
            let col = x.col(j);
            let yv = apply_exp_taylor_vec(&b, &col, 8);
            for i in 0..5 {
                assert!((y[(i, j)] - yv[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn half_exponent_squares_to_full() {
        // exp(B) = exp(B/2)^2; with enough terms the Taylor approximations
        // agree to high accuracy. This is the identity Theorem 4.1 exploits.
        let b = Mat::from_diag(&[0.3, 1.1, 2.0]);
        let half = b.scaled(0.5);
        let k = taylor_degree(2.0, 1e-10);
        let ph = exp_taylor_dense(&half, k);
        let sq = crate::gemm::matmul(&ph, &ph);
        let e = expm(&b).unwrap();
        for i in 0..3 {
            assert!((sq[(i, i)] - e[(i, i)]).abs() / e[(i, i)] < 1e-6);
        }
    }
}
