//! Lanczos iteration for extreme eigenvalues of large symmetric operators.
//!
//! Power iteration (in [`crate::norms`]) converges at rate `λ₂/λ₁`, which
//! degrades badly on the flat spectra the solver's `Ψ(t)` develops late in a
//! run. Lanczos converges like a Chebyshev polynomial in the same number of
//! operator applications and needs only mat-vecs, so it is the right
//! estimator for `λmax(Σ xᵢAᵢ)` at large `m` where a dense
//! eigendecomposition would break the nearly-linear work budget.
//!
//! The implementation is the classical three-term recurrence with **full
//! reorthogonalization** — at the small Krylov dimensions we use (≤ 64) the
//! `O(k²m)` reorthogonalization cost is negligible and removes the classic
//! ghost-eigenvalue failure mode.

use crate::eigen::sym_eigen;
use crate::error::LinalgError;
use crate::mat::Mat;
use crate::op::SymOp;
use crate::vecops;

/// Result of a Lanczos run.
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// Ritz estimate of the largest eigenvalue.
    pub lambda_max: f64,
    /// Ritz estimate of the smallest eigenvalue (of the Krylov restriction;
    /// an *upper* bound on the true λmin).
    pub lambda_min_ritz: f64,
    /// Krylov dimension actually built.
    pub steps: usize,
    /// Residual bound `|β_k·(last Ritz-vector component)|` for `lambda_max`.
    pub residual: f64,
}

/// Estimate extreme eigenvalues of a symmetric operator with `max_steps`
/// Lanczos iterations (operator applications), stopping early when the
/// `λmax` residual drops below `tol·|λmax|`.
///
/// Deterministic: starts from a fixed quasi-random vector.
///
/// # Errors
/// Propagates failures of the small tridiagonal eigensolve.
pub fn lanczos_extreme(
    op: &dyn SymOp,
    max_steps: usize,
    tol: f64,
) -> Result<LanczosResult, LinalgError> {
    let n = op.dim();
    if n == 0 {
        return Ok(LanczosResult {
            lambda_max: 0.0,
            lambda_min_ritz: 0.0,
            steps: 0,
            residual: 0.0,
        });
    }
    let k_cap = max_steps.clamp(1, n);

    // Deterministic start vector (same mixing constant as power iteration).
    let mut v: Vec<f64> =
        (0..n).map(|i| ((i.wrapping_mul(2654435761)) % 1000) as f64 / 1000.0 + 0.5).collect();
    vecops::normalize(&mut v);

    let mut basis: Vec<Vec<f64>> = vec![v.clone()];
    let mut alphas: Vec<f64> = Vec::with_capacity(k_cap);
    let mut betas: Vec<f64> = Vec::with_capacity(k_cap);

    let mut result =
        LanczosResult { lambda_max: 0.0, lambda_min_ritz: 0.0, steps: 0, residual: f64::INFINITY };

    for step in 0..k_cap {
        let vj = basis.last().expect("nonempty basis").clone();
        let mut w = op.apply_vec(&vj);
        let alpha = vecops::dot(&w, &vj);
        alphas.push(alpha);
        // w ← w − α v_j − β v_{j−1}, then full reorthogonalization.
        vecops::axpy(-alpha, &vj, &mut w);
        if step > 0 {
            let beta_prev = betas[step - 1];
            vecops::axpy(-beta_prev, &basis[step - 1], &mut w);
        }
        for b in &basis {
            let c = vecops::dot(&w, b);
            if c != 0.0 {
                vecops::axpy(-c, b, &mut w);
            }
        }
        let beta = vecops::norm2(&w);

        // Solve the (step+1)-dimensional tridiagonal Ritz problem.
        let k = alphas.len();
        let mut t = Mat::zeros(k, k);
        for (i, &a) in alphas.iter().enumerate() {
            t[(i, i)] = a;
        }
        for (i, &b) in betas.iter().enumerate().take(k.saturating_sub(1)) {
            t[(i, i + 1)] = b;
            t[(i + 1, i)] = b;
        }
        let eig = sym_eigen(&t)?;
        let lam_hi = eig.lambda_max();
        let lam_lo = eig.lambda_min();
        // Residual bound for the top Ritz pair: |β · s_k| where s_k is the
        // last component of the top Ritz vector.
        let top_col = eig.vectors.col(k - 1);
        let residual = (beta * top_col[k - 1]).abs();

        result = LanczosResult { lambda_max: lam_hi, lambda_min_ritz: lam_lo, steps: k, residual };
        if residual <= tol * lam_hi.abs().max(1e-300) {
            break;
        }
        if beta <= 1e-14 {
            // Invariant subspace found: estimates are exact for it.
            result.residual = 0.0;
            break;
        }
        vecops::scale(1.0 / beta, &mut w);
        betas.push(beta);
        basis.push(w);
    }
    Ok(result)
}

/// Convenience: Lanczos-based `λmax` estimate with sensible defaults
/// (≤ 48 steps, 10⁻⁸ residual tolerance).
///
/// ```
/// use psdp_linalg::{lambda_max_lanczos, Mat};
///
/// let a = Mat::from_diag(&[1.0, 6.0, 3.0]);
/// assert!((lambda_max_lanczos(&a)? - 6.0).abs() < 1e-8);
/// # Ok::<(), psdp_linalg::LinalgError>(())
/// ```
///
/// # Errors
/// Propagates tridiagonal eigensolve failures.
pub fn lambda_max_lanczos(op: &dyn SymOp) -> Result<f64, LinalgError> {
    Ok(lanczos_extreme(op, 48, 1e-8)?.lambda_max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_exact() {
        let a = Mat::from_diag(&[1.0, 7.0, 3.0, 0.5]);
        let r = lanczos_extreme(&a, 10, 1e-12).unwrap();
        assert!((r.lambda_max - 7.0).abs() < 1e-9, "got {}", r.lambda_max);
    }

    #[test]
    fn matches_dense_eigensolver() {
        let mut a = Mat::from_fn(20, 20, |i, j| ((i * 13 + j * 7) % 11) as f64 * 0.1);
        a.symmetrize();
        a.add_diag(2.0);
        let truth = sym_eigen(&a).unwrap().lambda_max();
        let r = lanczos_extreme(&a, 20, 1e-12).unwrap();
        assert!((r.lambda_max - truth).abs() < 1e-8 * truth, "{} vs {truth}", r.lambda_max);
    }

    #[test]
    fn flat_spectrum_beats_power_iteration_budget() {
        // λ = {1, 0.999, …}: power iteration crawls; Lanczos nails it in a
        // few steps.
        let mut diag = vec![0.999_f64; 30];
        diag[7] = 1.0;
        let a = Mat::from_diag(&diag);
        let r = lanczos_extreme(&a, 12, 1e-10).unwrap();
        assert!((r.lambda_max - 1.0).abs() < 1e-9, "got {}", r.lambda_max);
        assert!(r.steps <= 12);
    }

    #[test]
    fn early_termination_on_invariant_subspace() {
        // Rank-1 operator: Krylov space is 1-dimensional after one step
        // (plus the zero directions).
        let mut a = Mat::zeros(6, 6);
        a.rank1_update(3.0, &[1.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
        let r = lanczos_extreme(&a, 20, 1e-12).unwrap();
        assert!((r.lambda_max - 9.0).abs() < 1e-9, "got {}", r.lambda_max);
        assert!(r.steps <= 4, "took {} steps", r.steps);
    }

    #[test]
    fn lambda_min_ritz_upper_bounds_true_min() {
        let a = Mat::from_diag(&[0.1, 2.0, 5.0]);
        let r = lanczos_extreme(&a, 3, 1e-12).unwrap();
        assert!(r.lambda_min_ritz >= 0.1 - 1e-9);
    }

    #[test]
    fn empty_operator() {
        let a = Mat::zeros(0, 0);
        let r = lanczos_extreme(&a, 5, 1e-9).unwrap();
        assert_eq!(r.lambda_max, 0.0);
        assert_eq!(r.steps, 0);
    }

    #[test]
    fn convenience_wrapper() {
        let a = Mat::from_diag(&[4.0, 1.0]);
        assert!((lambda_max_lanczos(&a).unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn works_through_symop_for_sparse_like_operators() {
        // A wrapper that only exposes apply_vec — mimics the sparse path.
        struct OnlyApply(Mat);
        impl SymOp for OnlyApply {
            fn dim(&self) -> usize {
                self.0.nrows()
            }
            fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
                crate::gemm::matvec(&self.0, x)
            }
        }
        let mut a = Mat::from_fn(15, 15, |i, j| ((i + j) % 5) as f64 * 0.2);
        a.symmetrize();
        a.add_diag(1.0);
        let truth = sym_eigen(&a).unwrap().lambda_max();
        let r = lanczos_extreme(&OnlyApply(a), 15, 1e-12).unwrap();
        assert!((r.lambda_max - truth).abs() < 1e-8 * truth);
    }
}
