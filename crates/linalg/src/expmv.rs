//! Matrix-exponential *action*: `exp(B)·x` without forming `exp(B)`.
//!
//! The Taylor operator in [`crate::poly`] needs `k = Θ(κ)` operator
//! applications with `k ≈ e²κ ≈ 7.4κ` (Lemma 4.2's one-sided bound forces
//! the long degree). For the engine's *evaluation* side — where a two-sided
//! relative error is enough — Krylov and Chebyshev methods reach the same
//! accuracy in `O(√κ)`–`O(κ)` applications with far smaller constants:
//!
//! * [`expm_action_lanczos`] — restarted Lanczos: time-steps
//!   `exp(B)v = (exp(B/s))^s v` so each substep needs a small Krylov space,
//!   with full reorthogonalization and an a-posteriori convergence check per
//!   substep. Output is kept in log-scale (`unit vector + log‖·‖`), and the
//!   tridiagonal exponential is evaluated in a top-Ritz-shifted frame, so
//!   `κ ≫ 700` cannot overflow — which lets operators with `n ≤ MAX_KRYLOV`
//!   (where the Krylov space is exact) run a *single* time step at any `κ`.
//! * [`chebyshev_exp_block`] — a fixed, data-independent Chebyshev expansion
//!   of `e^{κ(t−1)/2}` on the spectral interval `[0, κ]`, applied to a block
//!   by the three-term recurrence. Returns `e^{−κ}·exp(B)·X`, again so no
//!   intermediate exceeds `‖X‖`. Degree ≈ `κ/2 + O(√κ)` — the Bessel-tail
//!   cutoff — roughly 14× fewer applications than Lemma 4.2 at large `κ`.
//!
//! **Determinism.** Both paths are sequential per vector/block and make no
//! data-dependent parallel decisions; all parallelism lives inside the
//! operator's `apply_vec`/`apply_block` (the blocked GEMM / CSR spmm), which
//! are bitwise thread-count-invariant. The Lanczos start vector is the input
//! vector itself, so the whole computation is a pure function of `(op, x)`.
//!
//! **Drift checks.** Every result carries its a-posteriori residual (Lanczos)
//! or coefficient tail (Chebyshev); callers compare these against the
//! requested tolerance instead of trusting the iteration counts. Lanczos
//! additionally re-splits the time grid (doubling `s`) when a substep fails
//! to converge inside [`MAX_KRYLOV`] applications.

use crate::eigen::sym_eigen;
use crate::error::LinalgError;
use crate::mat::Mat;
use crate::op::SymOp;
use crate::vecops;

/// Target spectral width per Lanczos time step for operators larger than
/// [`MAX_KRYLOV`]: `s = ⌈κ / KAPPA_PER_STEP⌉`. At width 16 a ≲ 30-dimensional
/// Krylov space reaches 1e-12 accuracy per substep. (Overflow is handled by
/// the shifted tridiagonal evaluation, not by the grid; small operators skip
/// the grid entirely and run `s = 1`.)
pub const KAPPA_PER_STEP: f64 = 16.0;

/// Krylov-dimension cap per substep. A substep that has not converged by
/// here triggers a restart with a finer time grid (`s` doubled).
pub const MAX_KRYLOV: usize = 48;

/// How many times the time grid may be refined (each refinement doubles
/// `s`) before returning the best effort with its residual recorded.
pub const MAX_GRID_REFINEMENTS: usize = 4;

/// Hard cap on the Chebyshev expansion degree (reached only for `κ ≳ 4000`,
/// far beyond any workload in this workspace; the tail check reports the
/// truncation error if it triggers).
pub const CHEB_MAX_DEGREE: usize = 2048;

/// `exp(B)·x` in log-scale: the result is `exp(log_norm) · v` with `‖v‖ = 1`.
#[derive(Debug, Clone)]
pub struct ExpmAction {
    /// Unit-norm direction of `exp(B)·x` (all-zero iff `x = 0`).
    pub v: Vec<f64>,
    /// `ln‖exp(B)·x‖` (`−∞` iff `x = 0`).
    pub log_norm: f64,
    /// Total operator applications performed.
    pub matvecs: usize,
    /// Time steps used (`s` in `(exp(B/s))^s`).
    pub steps: usize,
    /// Largest per-substep convergence residual `‖y_k − y_{k−1}‖/‖y_k‖`
    /// encountered; compare against the requested `tol` (drift check).
    pub residual: f64,
}

/// Compute `exp(B)·x` for symmetric PSD `B` with `‖B‖₂ ≤ kappa` by
/// restarted Lanczos. Deterministic; see module docs for the contract.
///
/// `tol` is the per-substep relative convergence target; the end-to-end
/// relative error is `O(s · tol)`. The returned [`ExpmAction::residual`] is
/// the worst substep residual actually achieved.
///
/// # Errors
/// Propagates failures of the small tridiagonal eigensolve.
pub fn expm_action_lanczos(
    op: &dyn SymOp,
    x: &[f64],
    kappa: f64,
    tol: f64,
) -> Result<ExpmAction, LinalgError> {
    let n = op.dim();
    assert_eq!(x.len(), n, "expm_action_lanczos: dim mismatch");
    assert!(kappa >= 0.0 && kappa.is_finite(), "expm_action_lanczos: bad kappa {kappa}");
    if n == 0 {
        return Ok(ExpmAction {
            v: Vec::new(),
            log_norm: 0.0,
            matvecs: 0,
            steps: 0,
            residual: 0.0,
        });
    }
    let norm0 = vecops::norm2(x);
    if norm0 == 0.0 || !norm0.is_finite() {
        return Ok(ExpmAction {
            v: vec![0.0; n],
            log_norm: f64::NEG_INFINITY,
            matvecs: 0,
            steps: 0,
            residual: 0.0,
        });
    }

    // Small operators reach an invariant subspace by step `n ≤ MAX_KRYLOV`,
    // where the Krylov answer is exact — no time grid needed (the shifted
    // `exp((T − μI)/s)` evaluation below is overflow-safe at any κ). Large
    // operators start at the spectral-width grid and refine on residual.
    let s0 = if n <= MAX_KRYLOV { 1 } else { ((kappa / KAPPA_PER_STEP).ceil() as usize).max(1) };
    let mut best: Option<ExpmAction> = None;
    for refinement in 0..=MAX_GRID_REFINEMENTS {
        let s = s0 << refinement;
        let (action, converged) = lanczos_time_grid(op, x, norm0, s, tol)?;
        let better = best.as_ref().is_none_or(|b| action.residual < b.residual);
        if better {
            best = Some(action);
        }
        if converged {
            break;
        }
    }
    Ok(best.expect("at least one grid attempt"))
}

/// One full pass over a fixed time grid of `s` substeps. Returns the result
/// and whether every substep met `tol` inside [`MAX_KRYLOV`] applications.
fn lanczos_time_grid(
    op: &dyn SymOp,
    x: &[f64],
    norm0: f64,
    s: usize,
    tol: f64,
) -> Result<(ExpmAction, bool), LinalgError> {
    let n = op.dim();
    let inv_s = 1.0 / s as f64;
    let mut v = x.to_vec();
    vecops::scale(1.0 / norm0, &mut v);
    let mut log_norm = norm0.ln();
    let mut matvecs = 0usize;
    let mut worst_residual = 0.0f64;
    let mut all_converged = true;

    for _ in 0..s {
        let k_cap = MAX_KRYLOV.min(n);
        let mut basis: Vec<Vec<f64>> = vec![v.clone()];
        let mut alphas: Vec<f64> = Vec::with_capacity(k_cap);
        let mut betas: Vec<f64> = Vec::with_capacity(k_cap);
        let mut y_prev: Vec<f64> = Vec::new();
        let mut y: Vec<f64> = Vec::new();
        let mut mu = 0.0f64;
        let mut mu_prev = 0.0f64;
        let mut residual = f64::INFINITY;
        let mut converged = false;

        for step in 0..k_cap {
            let vj = basis.last().expect("nonempty basis").clone();
            let mut w = op.apply_vec(&vj);
            matvecs += 1;
            let alpha = vecops::dot(&w, &vj);
            alphas.push(alpha);
            vecops::axpy(-alpha, &vj, &mut w);
            if step > 0 {
                vecops::axpy(-betas[step - 1], &basis[step - 1], &mut w);
            }
            for b in &basis {
                let c = vecops::dot(&w, b);
                if c != 0.0 {
                    vecops::axpy(-c, b, &mut w);
                }
            }
            let beta = vecops::norm2(&w);

            // y = exp(T_k / s) e₁ for the current tridiagonal restriction.
            let k = alphas.len();
            let mut t = Mat::zeros(k, k);
            for (i, &a) in alphas.iter().enumerate() {
                t[(i, i)] = a;
            }
            for (i, &b) in betas.iter().enumerate().take(k.saturating_sub(1)) {
                t[(i, i + 1)] = b;
                t[(i + 1, i)] = b;
            }
            let eig = sym_eigen(&t)?;
            // Evaluate in a top-Ritz-shifted frame: exp((T − μI)/s)e₁ has
            // entries ≤ 1 at any κ; the shift re-enters `log_norm` after the
            // substep, so even `s = 1` at κ ≫ 700 cannot overflow.
            mu = eig.values.iter().fold(f64::NEG_INFINITY, |m, &l| m.max(l));
            y = vec![0.0; k];
            for (j, &lam) in eig.values.iter().enumerate() {
                let w_j = ((lam - mu) * inv_s).exp() * eig.vectors[(0, j)];
                for (i, yi) in y.iter_mut().enumerate() {
                    *yi += eig.vectors[(i, j)] * w_j;
                }
            }

            let ynorm = vecops::norm2(&y).max(1e-300);
            if !y_prev.is_empty() {
                // Bring the previous iterate into the current frame (the top
                // Ritz value is nondecreasing in k, so the factor is ≤ 1).
                let frame = ((mu_prev - mu) * inv_s).exp();
                let mut diff = 0.0f64;
                for (i, &yi) in y.iter().enumerate() {
                    let p = y_prev.get(i).copied().unwrap_or(0.0) * frame;
                    diff += (yi - p) * (yi - p);
                }
                residual = diff.sqrt() / ynorm;
                if residual <= tol {
                    converged = true;
                    break;
                }
            }
            if beta <= 1e-14 {
                // Invariant subspace: the Krylov answer is exact.
                residual = 0.0;
                converged = true;
                break;
            }
            y_prev = y.clone();
            mu_prev = mu;
            vecops::scale(1.0 / beta, &mut w);
            betas.push(beta);
            basis.push(w);
        }

        // w = Σ y_j · basis_j, then renormalize into log-scale.
        let mut wv = vec![0.0; n];
        for (j, b) in basis.iter().enumerate().take(y.len()) {
            vecops::axpy(y[j], b, &mut wv);
        }
        let wnorm = vecops::norm2(&wv);
        if wnorm == 0.0 || !wnorm.is_finite() {
            return Ok((
                ExpmAction {
                    v: vec![0.0; n],
                    log_norm: f64::NEG_INFINITY,
                    matvecs,
                    steps: s,
                    residual: worst_residual,
                },
                false,
            ));
        }
        log_norm += wnorm.ln() + mu * inv_s;
        vecops::scale(1.0 / wnorm, &mut wv);
        v = wv;
        worst_residual = worst_residual.max(residual.min(1.0));
        all_converged &= converged;
    }

    Ok((ExpmAction { v, log_norm, matvecs, steps: s, residual: worst_residual }, all_converged))
}

/// Result of a Chebyshev block application: `y ≈ e^{−log_scale} · exp(B) · X`.
#[derive(Debug, Clone)]
pub struct ChebApplied {
    /// The scaled block `e^{−log_scale}·exp(B)·X`.
    pub y: Mat,
    /// Log of the factor taken out of the exponential (`= kappa`, or `0`
    /// on the `κ ≈ 0` fast path).
    pub log_scale: f64,
    /// Polynomial degree used (number of operator applications is
    /// `degree − 1`... `degree`, depending on the recurrence tail).
    pub degree: usize,
    /// Largest trailing-coefficient magnitude — the truncation-error drift
    /// check; compare against the requested `tol`.
    pub coeff_tail: f64,
}

/// Chebyshev coefficients of `h(t) = e^{a(t−1)}` on `[−1, 1]` (so that
/// `h((2/κ)B − I) = e^{−κ/2·(… )}`, see [`chebyshev_exp_block`]), computed by
/// Chebyshev–Gauss quadrature with `degree + 8` nodes. `coeffs[0]` is
/// already halved (ready for the Clenshaw/forward recurrence).
fn chebyshev_coeffs(a: f64, degree: usize) -> Vec<f64> {
    let n_nodes = degree + 9;
    // h at the Chebyshev–Gauss nodes cos(θ_l), θ_l = π(l+½)/N.
    let hvals: Vec<f64> = (0..n_nodes)
        .map(|l| {
            let theta = std::f64::consts::PI * (l as f64 + 0.5) / n_nodes as f64;
            (a * (theta.cos() - 1.0)).exp()
        })
        .collect();
    let mut coeffs = Vec::with_capacity(degree + 1);
    for j in 0..=degree {
        let mut c = 0.0f64;
        for (l, &h) in hvals.iter().enumerate() {
            let theta = std::f64::consts::PI * (l as f64 + 0.5) / n_nodes as f64;
            c += h * (j as f64 * theta).cos();
        }
        c *= 2.0 / n_nodes as f64;
        if j == 0 {
            c *= 0.5;
        }
        coeffs.push(c);
    }
    coeffs
}

/// Apply `e^{−κ}·exp(B)` to the block `x` for symmetric PSD `B` with
/// `‖B‖₂ ≤ kappa`, via a degree-adaptive Chebyshev expansion on `[0, κ]`.
///
/// The spectral map is `t ↦ κ(t+1)/2`, so with `L = (2/κ)B − I`
/// (`‖L‖ ≤ 1`) the expansion of `h(t) = e^{κ(t−1)/2}` evaluated at `L` is
/// exactly `e^{−κ}exp(B)`. Every Chebyshev iterate satisfies `‖T_j(L)‖ ≤ 1`,
/// so intermediates never exceed `‖x‖` — the overflow safety that lets the
/// engine run at arbitrary `κ` with `log_scale = κ` carried separately.
///
/// Degree starts at `a + 4√(a+1) + 10` (`a = κ/2`, the Bessel-decay
/// corner) and grows until the trailing coefficients drop below `tol` (or
/// [`CHEB_MAX_DEGREE`]); the achieved tail is reported for drift checking.
pub fn chebyshev_exp_block(op: &dyn SymOp, x: &Mat, kappa: f64, tol: f64) -> ChebApplied {
    assert_eq!(x.nrows(), op.dim(), "chebyshev_exp_block: dim mismatch");
    assert!(kappa >= 0.0 && kappa.is_finite(), "chebyshev_exp_block: bad kappa {kappa}");
    assert!(tol > 0.0, "chebyshev_exp_block: tol must be positive");
    if kappa < 1e-12 {
        // exp(B) = I + O(κ): the identity is within tol for any workload tol.
        return ChebApplied { y: x.clone(), log_scale: 0.0, degree: 1, coeff_tail: kappa };
    }

    let a = kappa * 0.5;
    let mut degree = (a + 4.0 * (a + 1.0).sqrt() + 10.0).ceil() as usize;
    let (coeffs, tail) = loop {
        let degree_now = degree.min(CHEB_MAX_DEGREE);
        let coeffs = chebyshev_coeffs(a, degree_now);
        let tail = coeffs.iter().rev().take(3).fold(0.0f64, |acc, &c| acc.max(c.abs()));
        if tail <= tol || degree_now >= CHEB_MAX_DEGREE {
            break (coeffs, tail);
        }
        degree = degree_now * 3 / 2 + 4;
    };

    // Forward three-term recurrence: P₀ = x, P₁ = L·x, P_{j+1} = 2L·P_j − P_{j−1}.
    let scale = 2.0 / kappa;
    let apply_l = |b: &Mat| -> Mat {
        let mut out = op.apply_block(b);
        out.scale(scale);
        out.axpy(-1.0, b);
        out
    };
    let mut y = x.scaled(coeffs[0]);
    if coeffs.len() > 1 {
        let mut p_prev = x.clone();
        let mut p = apply_l(x);
        y.axpy(coeffs[1], &p);
        for &c in coeffs.iter().skip(2) {
            let mut p_next = apply_l(&p);
            p_next.scale(2.0);
            p_next.axpy(-1.0, &p_prev);
            y.axpy(c, &p_next);
            p_prev = p;
            p = p_next;
        }
    }
    ChebApplied { y, log_scale: kappa, degree: coeffs.len(), coeff_tail: tail }
}

/// Vector convenience wrapper over [`chebyshev_exp_block`]: returns
/// `(e^{−log_scale}·exp(B)·x, log_scale)`.
pub fn expm_action_chebyshev(op: &dyn SymOp, x: &[f64], kappa: f64, tol: f64) -> (Vec<f64>, f64) {
    let mut block = Mat::zeros(op.dim(), 1);
    block.set_col(0, x);
    let applied = chebyshev_exp_block(op, &block, kappa, tol);
    (applied.y.col(0), applied.log_scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funcs::expm;

    fn test_psd(m: usize, kappa: f64) -> Mat {
        let mut b = Mat::from_fn(m, m, |i, j| ((i * 7 + j * 5) % 11) as f64 * 0.1);
        b.symmetrize();
        let eig = sym_eigen(&b).unwrap();
        b.add_diag(-eig.lambda_min().min(0.0) + 0.01);
        let lmax = sym_eigen(&b).unwrap().lambda_max();
        b.scale(kappa / lmax);
        b
    }

    fn exact_action(b: &Mat, x: &[f64]) -> Vec<f64> {
        crate::gemm::matvec(&expm(b).unwrap(), x)
    }

    #[test]
    fn lanczos_action_matches_expm_small() {
        let b = test_psd(12, 3.0);
        let x: Vec<f64> = (0..12).map(|i| (i as f64 - 5.0) * 0.3).collect();
        let r = expm_action_lanczos(&b, &x, 3.0, 1e-12).unwrap();
        let truth = exact_action(&b, &x);
        let tnorm = vecops::norm2(&truth);
        assert!((r.log_norm.exp() - tnorm).abs() < 1e-8 * tnorm, "norm mismatch");
        for (i, &ti) in truth.iter().enumerate() {
            let got = r.log_norm.exp() * r.v[i];
            assert!((got - ti).abs() < 1e-7 * tnorm, "entry {i}: {got} vs {ti}");
        }
        assert!(r.residual <= 1e-10, "residual {}", r.residual);
    }

    /// `ln‖exp(diag)·x‖` computed stably by log-sum-exp (diagonal truth).
    fn diag_log_norm(diag: &[f64], x: &[f64]) -> f64 {
        let m = diag.iter().fold(f64::NEG_INFINITY, |a, &d| a.max(d));
        let sum: f64 = diag.iter().zip(x).map(|(&d, &xi)| (2.0 * (d - m)).exp() * xi * xi).sum();
        m + 0.5 * sum.ln()
    }

    #[test]
    fn lanczos_small_dim_single_step_any_kappa() {
        // n ≤ MAX_KRYLOV: the Krylov space is exact, so one time step
        // suffices even at κ = 800 where exp(κ) would overflow — the
        // top-Ritz-shifted tridiagonal evaluation keeps every intermediate
        // bounded, and the shift re-enters through log_norm.
        let diag = [800.0, 500.0, 120.0, 3.0, 0.0];
        let b = Mat::from_diag(&diag);
        let x = [0.5; 5];
        let r = expm_action_lanczos(&b, &x, 800.0, 1e-12).unwrap();
        assert_eq!(r.steps, 1, "small dim should not time-step, got s = {}", r.steps);
        assert!(r.v.iter().all(|v| v.is_finite()));
        let want = diag_log_norm(&diag, &x);
        assert!((r.log_norm - want).abs() < 1e-8, "log norm {} vs {want}", r.log_norm);
        // The top eigendirection dominates by a factor e^{300}.
        assert!((r.v[0].abs() - 1.0).abs() < 1e-10, "got {}", r.v[0]);
    }

    #[test]
    fn lanczos_time_steps_engage_above_krylov_cap() {
        // n > MAX_KRYLOV rules out the exact-subspace fast path, so κ = 40
        // starts the grid at s = ⌈40/16⌉ = 3; diagonal truth in log domain.
        let n = MAX_KRYLOV + 12;
        let diag: Vec<f64> = (0..n).map(|i| 40.0 * i as f64 / (n - 1) as f64).collect();
        let b = Mat::from_diag(&diag);
        let x: Vec<f64> = (0..n).map(|i| 0.3 + ((i * 7) % 5) as f64 * 0.1).collect();
        let r = expm_action_lanczos(&b, &x, 40.0, 1e-12).unwrap();
        assert!(r.steps >= 3, "expected time-stepping, got s = {}", r.steps);
        let want = diag_log_norm(&diag, &x);
        assert!((r.log_norm - want).abs() < 1e-7, "log norm {} vs {want}", r.log_norm);
        for (i, (&d, &xi)) in diag.iter().zip(&x).enumerate() {
            let want_dir = (d - want).exp() * xi;
            assert!((r.v[i] - want_dir).abs() < 1e-7, "entry {i}: {} vs {want_dir}", r.v[i]);
        }
    }

    #[test]
    fn lanczos_action_zero_vector() {
        let b = Mat::from_diag(&[1.0, 2.0]);
        let r = expm_action_lanczos(&b, &[0.0, 0.0], 2.0, 1e-10).unwrap();
        assert_eq!(r.log_norm, f64::NEG_INFINITY);
        assert!(r.v.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn lanczos_action_deterministic() {
        let b = test_psd(10, 5.0);
        let x: Vec<f64> = (0..10).map(|i| ((i * 3) % 7) as f64 * 0.2 - 0.5).collect();
        let r1 = expm_action_lanczos(&b, &x, 5.0, 1e-11).unwrap();
        let r2 = expm_action_lanczos(&b, &x, 5.0, 1e-11).unwrap();
        assert_eq!(r1.v, r2.v);
        assert_eq!(r1.log_norm.to_bits(), r2.log_norm.to_bits());
    }

    #[test]
    fn chebyshev_block_matches_expm() {
        let kappa = 6.0;
        let b = test_psd(10, kappa);
        let x = Mat::from_fn(10, 3, |i, j| ((i + 2 * j) % 5) as f64 * 0.25 - 0.4);
        let applied = chebyshev_exp_block(&b, &x, kappa, 1e-12);
        assert_eq!(applied.log_scale, kappa);
        assert!(applied.coeff_tail <= 1e-12, "tail {}", applied.coeff_tail);
        let truth = crate::gemm::matmul(&expm(&b).unwrap(), &x);
        let scale = (-kappa).exp();
        for i in 0..10 {
            for j in 0..3 {
                let want = truth[(i, j)] * scale;
                assert!(
                    (applied.y[(i, j)] - want).abs() < 1e-9,
                    "({i},{j}): {} vs {want}",
                    applied.y[(i, j)]
                );
            }
        }
    }

    #[test]
    fn chebyshev_intermediates_bounded_at_huge_kappa() {
        // kappa = 800 would overflow exp(kappa); the scaled expansion must
        // stay finite and bounded by ~||x||.
        let diag: Vec<f64> = (0..8).map(|i| 100.0 * i as f64).collect();
        let b = Mat::from_diag(&diag);
        let x = Mat::from_fn(8, 1, |_, _| 1.0);
        let applied = chebyshev_exp_block(&b, &x, 700.0, 1e-10);
        assert!(applied.y.all_finite());
        // Entry for the top eigenvalue 700: e^{-700} e^{700} * 1 = 1.
        assert!((applied.y[(7, 0)] - 1.0).abs() < 1e-6, "got {}", applied.y[(7, 0)]);
        // Entry for eigenvalue 0 is e^{-700} ≈ 0 up to the polynomial's
        // absolute accuracy (~tol).
        assert!(applied.y[(0, 0)].abs() < 1e-8, "got {}", applied.y[(0, 0)]);
    }

    #[test]
    fn chebyshev_kappa_zero_fast_path() {
        let b = Mat::zeros(4, 4);
        let x = Mat::from_fn(4, 2, |i, j| (i + j) as f64);
        let applied = chebyshev_exp_block(&b, &x, 0.0, 1e-10);
        assert_eq!(applied.log_scale, 0.0);
        assert_eq!(applied.y.as_slice(), x.as_slice());
    }

    #[test]
    fn chebyshev_vec_wrapper_agrees_with_block() {
        let kappa = 4.0;
        let b = test_psd(7, kappa);
        let x: Vec<f64> = (0..7).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let (y, ls) = expm_action_chebyshev(&b, &x, kappa, 1e-11);
        assert_eq!(ls, kappa);
        let mut block = Mat::zeros(7, 1);
        block.set_col(0, &x);
        let applied = chebyshev_exp_block(&b, &block, kappa, 1e-11);
        assert_eq!(y, applied.y.col(0));
    }

    #[test]
    fn lanczos_and_chebyshev_agree() {
        let kappa = 9.0;
        let b = test_psd(14, kappa);
        let x: Vec<f64> = (0..14).map(|i| ((i * 5) % 9) as f64 * 0.2 - 0.7).collect();
        let lan = expm_action_lanczos(&b, &x, kappa, 1e-12).unwrap();
        let (cheb, ls) = expm_action_chebyshev(&b, &x, kappa, 1e-12);
        // Compare in the common frame: exp(B)x = e^{ls}·cheb = e^{log_norm}·v.
        for (i, &ci) in cheb.iter().enumerate() {
            let a = lan.log_norm.exp() * lan.v[i];
            let c = ls.exp() * ci;
            assert!((a - c).abs() < 1e-7 * lan.log_norm.exp(), "entry {i}: {a} vs {c}");
        }
    }
}
