//! Small vector kernels shared across the workspace.
//!
//! Vectors are plain `&[f64]` / `Vec<f64>`; these helpers keep callers from
//! re-implementing dot products and norms with subtle sign/empty-slice bugs.

/// Euclidean dot product `xᵀy`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `‖x‖₁ = Σ|xᵢ|`. For the solver's nonnegative `x` this equals `1ᵀx`.
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// `maxᵢ |xᵢ|` (0 for the empty slice).
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scale `x` by `alpha` in place.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// Normalize `x` to unit Euclidean norm in place; returns the original norm.
/// Leaves an all-zero vector untouched and returns 0.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Sum of entries `1ᵀx`.
#[inline]
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// True if every entry is finite.
#[inline]
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [3.0, -4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm1(&x), 7.0);
        assert_eq!(norm_inf(&x), 4.0);
        assert_eq!(sum(&x), -1.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 21.0]);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);

        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(norm1(&[]), 0.0);
        assert_eq!(norm_inf(&[]), 0.0);
        assert_eq!(sum(&[]), 0.0);
    }
}
