//! Parallel dense matrix–matrix and matrix–vector products.
//!
//! The kernels split the *output* by rows and hand row blocks to rayon, which
//! realizes the `O(log)` -depth reduction structure the paper's work–depth
//! analysis assumes while keeping each task cache-friendly (the inner loops
//! run over contiguous row slices of the row-major [`Mat`]).
//!
//! Sizes in this workspace are moderate (m ≲ 1024), so an i-k-j loop order
//! with a parallel outer loop beats a fancy blocked kernel while staying
//! simple enough to audit.

use crate::mat::Mat;
use rayon::prelude::*;

/// Below this many output rows, parallel dispatch costs more than it saves.
const PAR_ROW_THRESHOLD: usize = 8;

/// `C = A · B`.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn matmul(a: &Mat, b: &Mat) -> Mat {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "matmul: {}x{} * {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    let (m, k, n) = (a.nrows(), a.ncols(), b.ncols());
    let mut c = Mat::zeros(m, n);

    let do_row = |i: usize, crow: &mut [f64]| {
        let arow = a.row(i);
        for (kk, &aik) in arow.iter().enumerate().take(k) {
            if aik == 0.0 {
                continue;
            }
            let brow = b.row(kk);
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aik * bv;
            }
        }
    };

    if m < PAR_ROW_THRESHOLD {
        for i in 0..m {
            // Split borrow: rebuild the row slice from raw data.
            let crow = &mut c.as_mut_slice()[i * n..(i + 1) * n];
            do_row(i, crow);
        }
    } else {
        c.as_mut_slice().par_chunks_mut(n).enumerate().for_each(|(i, crow)| do_row(i, crow));
    }
    c
}

/// `y = A · x`.
///
/// # Panics
/// Panics if `x.len() != A.ncols()`.
pub fn matvec(a: &Mat, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.ncols(), x.len(), "matvec: dim mismatch");
    let m = a.nrows();
    if m < 64 {
        (0..m).map(|i| crate::vecops::dot(a.row(i), x)).collect()
    } else {
        (0..m).into_par_iter().map(|i| crate::vecops::dot(a.row(i), x)).collect()
    }
}

/// `y = Aᵀ · x` without forming the transpose.
pub fn matvec_transpose(a: &Mat, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.nrows(), x.len(), "matvec_transpose: dim mismatch");
    let n = a.ncols();
    let mut y = vec![0.0; n];
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        crate::vecops::axpy(xi, a.row(i), &mut y);
    }
    y
}

/// `C = Aᵀ · A` (Gram matrix), exploiting symmetry of the output.
pub fn gram(a: &Mat) -> Mat {
    let n = a.ncols();
    let mut g = Mat::zeros(n, n);
    // Accumulate row outer products: G += rowᵀ row.
    for i in 0..a.nrows() {
        g.rank1_update(1.0, a.row(i));
    }
    g.symmetrize();
    g
}

/// `C = A · Aᵀ`, exploiting symmetry of the output. Parallel over row pairs.
pub fn outer_gram(a: &Mat) -> Mat {
    let m = a.nrows();
    let mut c = Mat::zeros(m, m);
    let entries: Vec<(usize, usize, f64)> = (0..m)
        .into_par_iter()
        .flat_map_iter(|i| {
            let ri = a.row(i);
            (i..m).map(move |j| (i, j, crate::vecops::dot(ri, a.row(j))))
        })
        .collect();
    for (i, j, v) in entries {
        c[(i, j)] = v;
        c[(j, i)] = v;
    }
    c
}

/// Quadratic form `xᵀ A x` for square `A`.
pub fn quad_form(a: &Mat, x: &[f64]) -> f64 {
    crate::vecops::dot(&matvec(a, x), x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Mat::from_fn(5, 5, |i, j| (i + 2 * j) as f64);
        let c = matmul(&a, &Mat::identity(5));
        assert_eq!(c, a);
        let c2 = matmul(&Mat::identity(5), &a);
        assert_eq!(c2, a);
    }

    #[test]
    fn matmul_rectangular_shapes() {
        let a = Mat::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let b = Mat::from_fn(4, 2, |i, j| (i + j) as f64);
        let c = matmul(&a, &b);
        assert_eq!(c.nrows(), 3);
        assert_eq!(c.ncols(), 2);
        // hand-check entry (1,1): row1 of a = [4,5,6,7], col1 of b = [1,2,3,4]
        assert_eq!(c[(1, 1)], 4.0 + 10.0 + 18.0 + 28.0);
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        // Exercise the parallel path (m >= threshold) against a scalar loop.
        let a = Mat::from_fn(33, 17, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
        let b = Mat::from_fn(17, 21, |i, j| ((i * 5 + j * 11) % 9) as f64 - 4.0);
        let c = matmul(&a, &b);
        for i in 0..33 {
            for j in 0..21 {
                let mut s = 0.0;
                for k in 0..17 {
                    s += a[(i, k)] * b[(k, j)];
                }
                assert!((c[(i, j)] - s).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matvec_and_transpose() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let y = matvec(&a, &[1.0, -1.0]);
        assert_eq!(y, vec![-1.0, -1.0, -1.0]);
        let z = matvec_transpose(&a, &[1.0, 1.0, 1.0]);
        assert_eq!(z, vec![9.0, 12.0]);
    }

    #[test]
    fn gram_matches_explicit() {
        let a = Mat::from_fn(4, 3, |i, j| (i + j) as f64);
        let g = gram(&a);
        let g2 = matmul(&a.transpose(), &a);
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - g2[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn outer_gram_matches_explicit() {
        let a = Mat::from_fn(5, 3, |i, j| (2 * i + 3 * j) as f64 * 0.25);
        let g = outer_gram(&a);
        let g2 = matmul(&a, &a.transpose());
        for i in 0..5 {
            for j in 0..5 {
                assert!((g[(i, j)] - g2[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn quad_form_psd_of_gram() {
        let a = Mat::from_fn(3, 3, |i, j| ((i + 1) * (j + 2)) as f64 * 0.1);
        let g = gram(&a);
        // Gram matrices are PSD: x^T G x >= 0.
        assert!(quad_form(&g, &[1.0, -2.0, 0.7]) >= -1e-12);
    }
}
