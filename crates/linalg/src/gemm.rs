//! Parallel dense matrix–matrix and matrix–vector products.
//!
//! The GEMM kernel is cache-blocked and panelized: the `k` dimension is
//! tiled into fixed panels of [`GEMM_KC`] rows of `B` so a panel stays hot
//! in cache while it is streamed against a block of [`GEMM_MR`] rows of
//! `A`, and the innermost loop is unrolled [`GEMM_KU`]-way over `k` so each
//! pass over an output row retires four rank-1 contributions (4× less
//! read/write traffic on `C`, the bandwidth bottleneck of an i-k-j kernel).
//!
//! **Determinism contract.** Every block size is a fixed compile-time
//! constant and parallelism splits the *output* rows into fixed-size
//! chunks, so each output element is computed by exactly one task and its
//! partial sums are accumulated one term at a time in strictly increasing
//! `k` order — the same order as the textbook i-k-j triple loop. The result
//! is therefore **bitwise identical** to the scalar reference kernel for
//! every thread-pool width (`tests/kernel_equivalence.rs` asserts this
//! property across pools and against an independent reference
//! implementation). Do not introduce SIMD/FMA contractions or per-thread
//! partial accumulators here without re-deriving that contract; DESIGN.md
//! §12 documents why the solver's verdict certification relies on it.

use crate::mat::Mat;
use rayon::prelude::*;

/// Below this many output rows, parallel dispatch costs more than it saves
/// and the kernel runs on the calling thread.
pub const GEMM_PAR_MIN_ROWS: usize = 8;

/// Output rows per parallel task. Fixed (not derived from the pool width)
/// so the work decomposition — and thus scheduling-independent output —
/// is identical for every thread count.
pub const GEMM_MR: usize = 8;

/// Rows of `B` per cache panel (the `k`-dimension tile). A panel of
/// `GEMM_KC × n` doubles (`n ≤ 1024` in this workspace ⇒ ≤ 512 KiB) is
/// reused across all rows of the current `A` block before the next panel
/// is touched.
pub const GEMM_KC: usize = 64;

/// Innermost unroll factor over `k`: each pass over an output row folds in
/// this many `B` rows. Terms are still added one at a time in increasing
/// `k` order, so unrolling changes the memory traffic, not the float
/// associativity.
pub const GEMM_KU: usize = 4;

/// Below this many rows, [`matvec`] stays sequential.
pub const MATVEC_PAR_MIN_ROWS: usize = 64;

/// Accumulate `C[r0.., ..] += A[r0.., ..] · B` for a chunk of output rows.
///
/// `c_chunk` is the contiguous row-major storage of the chunk's rows. The
/// `k` loop is tiled by [`GEMM_KC`] and unrolled [`GEMM_KU`]-way; per
/// output element the contributions arrive in increasing `k` order.
fn gemm_row_chunk(a: &Mat, b: &Mat, r0: usize, c_chunk: &mut [f64]) {
    let k = a.ncols();
    let n = b.ncols();
    let rows = c_chunk.len() / n.max(1);
    for kb in (0..k).step_by(GEMM_KC) {
        let kend = (kb + GEMM_KC).min(k);
        for i in 0..rows {
            let arow = a.row(r0 + i);
            let crow = &mut c_chunk[i * n..(i + 1) * n];
            let mut kk = kb;
            while kk + GEMM_KU <= kend {
                let (a0, a1, a2, a3) = (arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]);
                let b0 = b.row(kk);
                let b1 = b.row(kk + 1);
                let b2 = b.row(kk + 2);
                let b3 = b.row(kk + 3);
                for (j, cv) in crow.iter_mut().enumerate() {
                    let mut v = *cv;
                    v += a0 * b0[j];
                    v += a1 * b1[j];
                    v += a2 * b2[j];
                    v += a3 * b3[j];
                    *cv = v;
                }
                kk += GEMM_KU;
            }
            while kk < kend {
                let aik = arow[kk];
                let brow = b.row(kk);
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += aik * bv;
                }
                kk += 1;
            }
        }
    }
}

/// `C = A · B` (blocked, panelized, thread-count-invariant; see module docs).
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn matmul(a: &Mat, b: &Mat) -> Mat {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "matmul: {}x{} * {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    let (m, n) = (a.nrows(), b.ncols());
    let mut c = Mat::zeros(m, n);
    if n == 0 {
        return c;
    }
    if m < GEMM_PAR_MIN_ROWS {
        gemm_row_chunk(a, b, 0, c.as_mut_slice());
    } else {
        c.as_mut_slice()
            .par_chunks_mut(GEMM_MR * n)
            .enumerate()
            .for_each(|(ci, chunk)| gemm_row_chunk(a, b, ci * GEMM_MR, chunk));
    }
    c
}

/// Symmetric product `C = S · S` for exactly symmetric `S`, exploiting the
/// symmetry of the output: only the upper triangle is computed (as row–row
/// dot products, valid because `S = Sᵀ`) and mirrored, halving the flops of
/// a general GEMM. Used by the Taylor engine to square `p(Φ/2)`.
///
/// Bitwise contract: for exactly symmetric input this returns the same
/// bits as `matmul(s, s)` on and above the diagonal (each entry is a
/// single increasing-`k` dot product, the same order the blocked GEMM
/// uses), with the strict lower triangle mirrored from the upper.
///
/// # Panics
/// Panics if `s` is not square.
pub fn symmul(s: &Mat) -> Mat {
    assert!(s.is_square(), "symmul: need a square (symmetric) matrix");
    let m = s.nrows();
    let mut c = Mat::zeros(m, m);
    let entries: Vec<(usize, usize, f64)> = (0..m)
        .into_par_iter()
        .flat_map_iter(|i| {
            let ri = s.row(i);
            (i..m).map(move |j| (i, j, crate::vecops::dot(ri, s.row(j))))
        })
        .collect();
    for (i, j, v) in entries {
        c[(i, j)] = v;
        c[(j, i)] = v;
    }
    c
}

/// `y = A · x`.
///
/// # Panics
/// Panics if `x.len() != A.ncols()`.
pub fn matvec(a: &Mat, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.ncols(), x.len(), "matvec: dim mismatch");
    let m = a.nrows();
    if m < MATVEC_PAR_MIN_ROWS {
        (0..m).map(|i| crate::vecops::dot(a.row(i), x)).collect()
    } else {
        (0..m).into_par_iter().map(|i| crate::vecops::dot(a.row(i), x)).collect()
    }
}

/// `y = Aᵀ · x` without forming the transpose.
pub fn matvec_transpose(a: &Mat, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.nrows(), x.len(), "matvec_transpose: dim mismatch");
    let n = a.ncols();
    let mut y = vec![0.0; n];
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        crate::vecops::axpy(xi, a.row(i), &mut y);
    }
    y
}

/// `C = Aᵀ · A` (Gram matrix), exploiting symmetry of the output.
pub fn gram(a: &Mat) -> Mat {
    let n = a.ncols();
    let mut g = Mat::zeros(n, n);
    // Accumulate row outer products: G += rowᵀ row.
    for i in 0..a.nrows() {
        g.rank1_update(1.0, a.row(i));
    }
    g.symmetrize();
    g
}

/// `C = A · Aᵀ`, exploiting symmetry of the output. Parallel over row pairs.
pub fn outer_gram(a: &Mat) -> Mat {
    let m = a.nrows();
    let mut c = Mat::zeros(m, m);
    let entries: Vec<(usize, usize, f64)> = (0..m)
        .into_par_iter()
        .flat_map_iter(|i| {
            let ri = a.row(i);
            (i..m).map(move |j| (i, j, crate::vecops::dot(ri, a.row(j))))
        })
        .collect();
    for (i, j, v) in entries {
        c[(i, j)] = v;
        c[(j, i)] = v;
    }
    c
}

/// Quadratic form `xᵀ A x` for square `A`.
pub fn quad_form(a: &Mat, x: &[f64]) -> f64 {
    crate::vecops::dot(&matvec(a, x), x)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Textbook i-k-j scalar reference: the order contract of the blocked
    /// kernel (per element, terms in increasing `k`, one at a time).
    fn reference_matmul(a: &Mat, b: &Mat) -> Mat {
        let (m, k, n) = (a.nrows(), a.ncols(), b.ncols());
        let mut c = Mat::zeros(m, n);
        for i in 0..m {
            for kk in 0..k {
                let aik = a[(i, kk)];
                for j in 0..n {
                    c[(i, j)] += aik * b[(kk, j)];
                }
            }
        }
        c
    }

    fn pseudo(m: usize, n: usize, salt: u64) -> Mat {
        Mat::from_fn(m, n, |i, j| {
            let h = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add((j as u64).wrapping_mul(1442695040888963407))
                .wrapping_add(salt);
            ((h >> 11) % 2000) as f64 / 997.0 - 1.0
        })
    }

    #[test]
    fn matmul_small_known() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Mat::from_fn(5, 5, |i, j| (i + 2 * j) as f64);
        let c = matmul(&a, &Mat::identity(5));
        assert_eq!(c, a);
        let c2 = matmul(&Mat::identity(5), &a);
        assert_eq!(c2, a);
    }

    #[test]
    fn matmul_rectangular_shapes() {
        let a = Mat::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let b = Mat::from_fn(4, 2, |i, j| (i + j) as f64);
        let c = matmul(&a, &b);
        assert_eq!(c.nrows(), 3);
        assert_eq!(c.ncols(), 2);
        // hand-check entry (1,1): row1 of a = [4,5,6,7], col1 of b = [1,2,3,4]
        assert_eq!(c[(1, 1)], 4.0 + 10.0 + 18.0 + 28.0);
    }

    /// The dispatch/blocking cutovers: every boundary shape must agree with
    /// the reference bitwise. Covers the serial↔parallel row cutover
    /// (`GEMM_PAR_MIN_ROWS` ± 1), the parallel chunk size (`GEMM_MR` ± 1),
    /// the `k` panel boundary (`GEMM_KC` ± 1), and the unroll remainder
    /// (`GEMM_KU` ± 1).
    #[test]
    fn matmul_bitwise_at_dispatch_boundaries() {
        let boundary_m = [
            1,
            GEMM_PAR_MIN_ROWS - 1,
            GEMM_PAR_MIN_ROWS,
            GEMM_PAR_MIN_ROWS + 1,
            GEMM_MR - 1,
            GEMM_MR,
            GEMM_MR + 1,
            2 * GEMM_MR + 3,
        ];
        let boundary_k = [1, GEMM_KU - 1, GEMM_KU, GEMM_KU + 1, GEMM_KC - 1, GEMM_KC, GEMM_KC + 1];
        for (case, &m) in boundary_m.iter().enumerate() {
            for &k in &boundary_k {
                let n = 1 + (m + k) % 9;
                let a = pseudo(m, k, case as u64);
                let b = pseudo(k, n, 1000 + case as u64);
                let c = matmul(&a, &b);
                let r = reference_matmul(&a, &b);
                assert_eq!(c.as_slice(), r.as_slice(), "m={m} k={k} n={n}");
            }
        }
    }

    #[test]
    fn matmul_zero_inner_and_outer_dims() {
        let a = Mat::zeros(3, 0);
        let b = Mat::zeros(0, 2);
        let c = matmul(&a, &b);
        assert_eq!((c.nrows(), c.ncols()), (3, 2));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
        let c = matmul(&Mat::zeros(0, 4), &Mat::zeros(4, 0));
        assert_eq!((c.nrows(), c.ncols()), (0, 0));
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        // Exercise the parallel path (m >= threshold) against a scalar loop.
        let a = Mat::from_fn(33, 17, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
        let b = Mat::from_fn(17, 21, |i, j| ((i * 5 + j * 11) % 9) as f64 - 4.0);
        let c = matmul(&a, &b);
        let r = reference_matmul(&a, &b);
        assert_eq!(c.as_slice(), r.as_slice(), "blocked kernel diverged from reference");
    }

    #[test]
    fn symmul_matches_matmul_bitwise_on_symmetric_input() {
        for m in [1usize, 2, 5, GEMM_MR + 1, GEMM_KC + 1] {
            let mut s = pseudo(m, m, 7);
            s.symmetrize();
            let c = symmul(&s);
            let r = matmul(&s, &s);
            assert_eq!(c.as_slice(), r.as_slice(), "m={m}");
        }
    }

    #[test]
    fn matvec_and_transpose() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let y = matvec(&a, &[1.0, -1.0]);
        assert_eq!(y, vec![-1.0, -1.0, -1.0]);
        let z = matvec_transpose(&a, &[1.0, 1.0, 1.0]);
        assert_eq!(z, vec![9.0, 12.0]);
    }

    #[test]
    fn matvec_parallel_cutover_bitwise() {
        // m just below / at / above the matvec parallel threshold: per-row
        // dot products are independent, so the values must be identical.
        for m in [MATVEC_PAR_MIN_ROWS - 1, MATVEC_PAR_MIN_ROWS, MATVEC_PAR_MIN_ROWS + 1] {
            let a = pseudo(m, 13, 3);
            let x: Vec<f64> = (0..13).map(|i| (i as f64 - 6.0) * 0.25).collect();
            let y = matvec(&a, &x);
            let want: Vec<f64> = (0..m).map(|i| crate::vecops::dot(a.row(i), &x)).collect();
            assert_eq!(y, want, "m={m}");
        }
    }

    #[test]
    fn gram_matches_explicit() {
        let a = Mat::from_fn(4, 3, |i, j| (i + j) as f64);
        let g = gram(&a);
        let g2 = matmul(&a.transpose(), &a);
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - g2[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn outer_gram_matches_explicit() {
        let a = Mat::from_fn(5, 3, |i, j| (2 * i + 3 * j) as f64 * 0.25);
        let g = outer_gram(&a);
        let g2 = matmul(&a, &a.transpose());
        for i in 0..5 {
            for j in 0..5 {
                assert!((g[(i, j)] - g2[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn quad_form_psd_of_gram() {
        let a = Mat::from_fn(3, 3, |i, j| ((i + 1) * (j + 2)) as f64 * 0.1);
        let g = gram(&a);
        // Gram matrices are PSD: x^T G x >= 0.
        assert!(quad_form(&g, &[1.0, -2.0, 0.7]) >= -1e-12);
    }
}
