//! Property-based tests for the dense kernels: the eigensolver, Cholesky,
//! QR, and the Taylor operator hold their contracts on random inputs.

use proptest::prelude::*;
use psdp_linalg::{
    apply_exp_taylor_block, cholesky, expm, lambda_max_power, matmul, psd_factor, qr, sym_eigen,
    taylor_degree, Mat,
};

/// Strategy: random symmetric matrix with entries in [-1, 1].
fn sym_mat(max_dim: usize) -> impl Strategy<Value = Mat> {
    (1..=max_dim).prop_flat_map(|n| {
        proptest::collection::vec(-1.0_f64..1.0, n * n).prop_map(move |data| {
            let mut m = Mat::from_vec(n, n, data);
            m.symmetrize();
            m
        })
    })
}

/// Strategy: random PSD matrix (Gram of a random square matrix, scaled).
fn psd_mat(max_dim: usize) -> impl Strategy<Value = Mat> {
    (1..=max_dim).prop_flat_map(|n| {
        proptest::collection::vec(-1.0_f64..1.0, n * n).prop_map(move |data| {
            let g = Mat::from_vec(n, n, data);
            let mut a = matmul(&g, &g.transpose());
            a.scale(1.0 / n as f64);
            a.symmetrize();
            a
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// V diag(λ) Vᵀ reconstructs A and V is orthonormal.
    #[test]
    fn eigen_reconstructs(a in sym_mat(8)) {
        let eig = sym_eigen(&a).unwrap();
        let rec = eig.reconstruct();
        let scale = a.max_abs().max(1.0);
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                prop_assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-7 * scale);
            }
        }
        let vtv = matmul(&eig.vectors.transpose(), &eig.vectors);
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                let want = if i == j { 1.0 } else { 0.0 };
                prop_assert!((vtv[(i, j)] - want).abs() < 1e-8);
            }
        }
    }

    /// Trace = Σλ and Frobenius² = Σλ² (spectral identities).
    #[test]
    fn eigen_spectral_identities(a in sym_mat(8)) {
        let eig = sym_eigen(&a).unwrap();
        let tr: f64 = eig.values.iter().sum();
        prop_assert!((tr - a.trace()).abs() < 1e-8 * a.max_abs().max(1.0) * a.nrows() as f64);
        let fro2: f64 = eig.values.iter().map(|l| l * l).sum();
        prop_assert!((fro2 - a.fro_norm().powi(2)).abs() < 1e-6 * (1.0 + fro2));
    }

    /// Cholesky of A = GGᵀ + I reconstructs and solves.
    #[test]
    fn cholesky_roundtrip(a in psd_mat(7)) {
        let mut spd = a.clone();
        spd.add_diag(1.0);
        let c = cholesky(&spd).unwrap();
        let rec = matmul(&c.l, &c.l.transpose());
        for i in 0..spd.nrows() {
            for j in 0..spd.ncols() {
                prop_assert!((rec[(i, j)] - spd[(i, j)]).abs() < 1e-8 * spd.max_abs().max(1.0));
            }
        }
        // Solve against a fixed rhs.
        let b: Vec<f64> = (0..spd.nrows()).map(|i| 1.0 + i as f64).collect();
        let x = c.solve(&b);
        let back = psdp_linalg::matvec(&spd, &x);
        for (g, w) in back.iter().zip(&b) {
            prop_assert!((g - w).abs() < 1e-7 * (1.0 + w.abs()));
        }
    }

    /// QR: Q orthonormal, R upper-triangular, QR = A.
    #[test]
    fn qr_contract(a in psd_mat(7)) {
        let f = qr(&a);
        let rec = matmul(&f.q, &f.r);
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                prop_assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-8 * a.max_abs().max(1.0));
            }
        }
    }

    /// psd_factor: QQᵀ = A for PSD A.
    #[test]
    fn psd_factor_reconstructs(a in psd_mat(7)) {
        let q = psd_factor(&a, 1e-10).unwrap();
        let rec = matmul(&q, &q.transpose());
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                prop_assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-6 * a.max_abs().max(1.0));
            }
        }
    }

    /// Power iteration agrees with the eigensolver's λmax on PSD input.
    #[test]
    fn power_iteration_agrees(a in psd_mat(8)) {
        let truth = sym_eigen(&a).unwrap().lambda_max();
        let est = lambda_max_power(&a, 600, 1e-10).value;
        prop_assert!((est - truth).abs() <= 1e-4 * truth.max(1e-6) + 1e-9,
            "power {est} vs eigen {truth}");
    }

    /// Lemma 4.2 sandwich holds on random PSD matrices (checked via the
    /// trace against a random block, a linear functional of the Loewner
    /// order).
    #[test]
    fn taylor_sandwich(a in psd_mat(6), eps in 0.02_f64..0.5) {
        let kappa = sym_eigen(&a).unwrap().lambda_max().max(1e-9);
        let k = taylor_degree(kappa, eps);
        let p = apply_exp_taylor_block(&a, &Mat::identity(a.nrows()), k);
        let e = expm(&a).unwrap();
        // Compare quadratic forms along the coordinate directions.
        for i in 0..a.nrows() {
            let pi = p[(i, i)];
            let ei = e[(i, i)];
            prop_assert!(pi <= ei * (1.0 + 1e-9), "p {pi} > exp {ei}");
            prop_assert!(pi >= ei * (1.0 - eps) - 1e-12, "p {pi} < (1-eps) exp {ei}");
        }
    }
}
