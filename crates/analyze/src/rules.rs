//! The rule set: source-level invariants behind the workspace's
//! determinism and serving-soundness contracts (DESIGN.md §11).
//!
//! | rule | contract it protects |
//! |------|----------------------|
//! | `D1` | no `HashMap`/`HashSet` in deterministic modules — hash iteration order would break bitwise reproducibility (E11–E13) |
//! | `D2` | no raw parallel float reductions — scheduling-dependent summation order breaks thread-count invariance (E12); use the fixed-chunk helpers |
//! | `D3` | no wall clock / ambient randomness / env reads in solver paths — results must be a pure function of (instance, options, seed) |
//! | `R1` | no panics or unchecked indexing on serving request paths — malformed input must surface as typed errors, not process aborts |
//! | `H1` | every `unsafe` block carries a `// SAFETY:` justification (full inventory reported) |
//!
//! All matchers work on the lexed token stream ([`crate::lexer`]), so
//! occurrences inside strings, comments, or raw strings never fire, and
//! test-scoped code (path- or `#[cfg(test)]`-based) is exempt from the
//! determinism/robustness rules.

use crate::lexer::{Comment, Tok, TokKind};
use crate::report::{Finding, Severity, UnsafeSite};

/// Crates whose non-test code must stay deterministic (D1/D2/D3).
const DET_CRATES: &[&str] = &["core", "expdot", "linalg", "sparse", "mmw", "parallel", "serve"];

/// Request-path files (R1): everything between raw client bytes and a
/// rendered response.
const REQUEST_PATHS: &[&str] = &[
    "crates/serve/src/",
    "crates/core/src/io.rs",
    "crates/core/src/bin_io.rs",
    "crates/cli/src/serve.rs",
    "crates/cli/src/jsonfmt.rs",
];

/// Rayon entry points that start a parallel chain (D2).
const PAR_STARTS: &[&str] =
    &["par_iter", "par_iter_mut", "into_par_iter", "par_chunks", "par_chunks_mut", "par_bridge"];

/// Order-sensitive reductions that must not terminate a parallel chain.
const PAR_REDUCERS: &[&str] = &["sum", "product", "reduce", "fold"];

/// Panicking macros banned on request paths.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// `std::env` readers banned in solver paths.
const ENV_READERS: &[&str] = &["var", "var_os", "vars", "vars_os"];

/// How the rules see one file.
pub struct FileInput<'a> {
    /// Workspace-relative path, forward slashes.
    pub path: &'a str,
    /// Token stream.
    pub tokens: &'a [Tok],
    /// Per-token test mask ([`crate::scope::test_mask`]).
    pub test_mask: &'a [bool],
    /// Comments (for H1's `SAFETY:` lookup).
    pub comments: &'a [Comment],
    /// Whole file is test/bench/example code (path-based).
    pub is_test_file: bool,
}

/// The crate a `crates/<name>/src/…` path belongs to, if any.
fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(name)
}

fn in_det_crate(path: &str) -> bool {
    crate_of(path).is_some_and(|c| DET_CRATES.contains(&c))
}

fn on_request_path(path: &str) -> bool {
    REQUEST_PATHS.iter().any(|p| path == *p || (p.ends_with('/') && path.starts_with(p)))
}

/// Run every rule over one file. Returns raw findings (suppressions are
/// applied by the caller) plus the file's `unsafe` inventory.
pub fn check_file(f: &FileInput<'_>) -> (Vec<Finding>, Vec<UnsafeSite>) {
    let mut findings = Vec::new();
    let mut inventory = Vec::new();

    let live = |i: usize| !f.is_test_file && !f.test_mask[i];

    if in_det_crate(f.path) {
        check_d1(f, &live, &mut findings);
        check_d2(f, &live, &mut findings);
        check_d3(f, &live, &mut findings);
    }
    if on_request_path(f.path) {
        check_r1(f, &live, &mut findings);
    }
    check_h1(f, &mut findings, &mut inventory);

    // One finding per (rule, line): `HashMap::<K, V>::new()` is one
    // problem, not three.
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    (findings, inventory)
}

fn finding(f: &FileInput<'_>, rule: &'static str, line: usize, message: String) -> Finding {
    Finding { rule, severity: Severity::Error, file: f.path.to_string(), line, message }
}

/// D1: hash containers in deterministic modules.
fn check_d1(f: &FileInput<'_>, live: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    for (i, t) in f.tokens.iter().enumerate() {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") && live(i) {
            out.push(finding(
                f,
                "D1",
                t.line,
                format!(
                    "`{}` in a deterministic module: hash iteration order varies per process, \
                     breaking bitwise reproducibility — use `BTree{}` or sorted-key iteration",
                    t.text,
                    t.text.trim_start_matches("Hash"),
                ),
            ));
        }
    }
}

/// D2: order-sensitive reductions terminating a parallel chain.
fn check_d2(f: &FileInput<'_>, live: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    for (i, t) in f.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || !PAR_STARTS.contains(&t.text.as_str()) || !live(i) {
            continue;
        }
        // Scan the rest of the statement at chain depth: a reducer method
        // at depth 0 consumes the parallel iterator itself; anything
        // nested inside `(`…`)` (closure bodies, arguments) does not.
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < f.tokens.len() {
            let u = &f.tokens[j];
            match u.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                ";" | "," if depth == 0 => break,
                _ if u.kind == TokKind::Ident
                    && depth == 0
                    && PAR_REDUCERS.contains(&u.text.as_str())
                    && j > 0
                    && f.tokens[j - 1].text == "." =>
                {
                    out.push(finding(
                        f,
                        "D2",
                        u.line,
                        format!(
                            "`.{}()` on a parallel iterator: float reduction order depends on \
                             work-stealing, breaking thread-count invariance — use the \
                             fixed-chunk deterministic helpers (psdp-parallel / psi.rs)",
                            u.text,
                        ),
                    ));
                }
                _ => {}
            }
            j += 1;
        }
    }
}

/// D3: wall clock, ambient randomness, and env reads in solver paths.
fn check_d3(f: &FileInput<'_>, live: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    for (i, t) in f.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || !live(i) {
            continue;
        }
        let msg = match t.text.as_str() {
            "SystemTime" | "Instant" => format!(
                "`{}` in a solver path: results must be a pure function of \
                 (instance, options, seed) — keep wall clocks out, or allowlist the file in \
                 audit.toml if this is telemetry that never feeds back into iteration",
                t.text
            ),
            "thread_rng" => "`thread_rng()` in a solver path: ambient randomness is not \
                             replayable — derive streams from the instance seed \
                             (psdp_parallel::rng)"
                .to_string(),
            "env" if is_env_read(f.tokens, i) => {
                "`std::env` read in a solver path: ambient configuration breaks replayability — \
                 thread options through explicitly"
                    .to_string()
            }
            _ => continue,
        };
        out.push(finding(f, "D3", t.line, msg));
    }
}

/// `env :: var…` starting at the `env` token.
fn is_env_read(tokens: &[Tok], i: usize) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.text == ":")
        && tokens.get(i + 2).is_some_and(|t| t.text == ":")
        && tokens.get(i + 3).is_some_and(|t| ENV_READERS.contains(&t.text.as_str()))
}

/// R1: panics and unchecked indexing on request paths.
fn check_r1(f: &FileInput<'_>, live: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    for (i, t) in f.tokens.iter().enumerate() {
        if !live(i) {
            continue;
        }
        match t.text.as_str() {
            // `.unwrap()`
            "unwrap"
                if t.kind == TokKind::Ident
                    && prev_is(f.tokens, i, ".")
                    && next_is(f.tokens, i, "(")
                    && f.tokens.get(i + 2).is_some_and(|u| u.text == ")") =>
            {
                out.push(finding(
                    f,
                    "R1",
                    t.line,
                    "`.unwrap()` on a request path: a malformed request must surface as a typed \
                     error response, never a panic"
                        .to_string(),
                ));
            }
            // `.expect("…")` — a string-literal argument distinguishes
            // Option/Result::expect from same-named parser methods.
            "expect"
                if t.kind == TokKind::Ident
                    && prev_is(f.tokens, i, ".")
                    && next_is(f.tokens, i, "(")
                    && f.tokens.get(i + 2).is_some_and(|u| u.kind == TokKind::Str) =>
            {
                out.push(finding(
                    f,
                    "R1",
                    t.line,
                    "`.expect(…)` on a request path: return a typed error instead of panicking"
                        .to_string(),
                ));
            }
            // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
            m if t.kind == TokKind::Ident
                && PANIC_MACROS.contains(&m)
                && next_is(f.tokens, i, "!") =>
            {
                out.push(finding(
                    f,
                    "R1",
                    t.line,
                    format!(
                        "`{m}!` on a request path: unreachable-by-construction claims rot as \
                         code evolves — return a typed internal error instead",
                    ),
                ));
            }
            // `expr[index]` — scalar indexing panics on out-of-range
            // parsed data; range slicing (`[a..b]`) is exempt.
            "[" if is_index_expr(f.tokens, i) => {
                out.push(finding(
                    f,
                    "R1",
                    t.line,
                    "`[]` indexing on a request path: use `.get()` and surface a typed error \
                     (suppress with a reason when the bound is provably checked)"
                        .to_string(),
                ));
            }
            _ => {}
        }
    }
}

fn prev_is(tokens: &[Tok], i: usize, text: &str) -> bool {
    i > 0 && tokens[i - 1].text == text
}

fn next_is(tokens: &[Tok], i: usize, text: &str) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.text == text)
}

/// Keywords that may directly precede a `[` without it being indexing
/// (slice patterns, array-typed/valued positions): `let [a, b] = …`,
/// `return [x]`, `in [..]`, …
const NON_VALUE_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "else", "return", "in", "if", "match", "while", "loop", "move", "box",
    "break", "continue", "yield", "as", "const", "static", "dyn", "impl", "fn", "where",
];

/// Is the `[` at `i` a (non-range) index expression? It must follow a
/// value (`ident`, `)`, `]`) — never `#[attr]`, array literals, types,
/// slice patterns — and its body must not be a range (`..` at bracket
/// depth 1).
fn is_index_expr(tokens: &[Tok], i: usize) -> bool {
    let follows_value = i > 0
        && ((tokens[i - 1].kind == TokKind::Ident
            && !NON_VALUE_KEYWORDS.contains(&tokens[i - 1].text.as_str()))
            || tokens[i - 1].text == ")"
            || tokens[i - 1].text == "]");
    if !follows_value {
        return false;
    }
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return true; // closed without seeing a range
                }
            }
            "." if depth == 1 && tokens.get(j + 1).is_some_and(|t| t.text == ".") => {
                return false; // `[a..b]` slice — not scalar indexing
            }
            _ => {}
        }
        j += 1;
    }
    true
}

/// H1: `unsafe` blocks must carry a `// SAFETY:` comment (same line or up
/// to three lines above). Every site goes into the inventory either way.
fn check_h1(f: &FileInput<'_>, out: &mut Vec<Finding>, inventory: &mut Vec<UnsafeSite>) {
    for t in f.tokens.iter() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let justified = f
            .comments
            .iter()
            .any(|c| c.text.contains("SAFETY:") && c.line <= t.line && c.line + 3 >= t.line);
        inventory.push(UnsafeSite { file: f.path.to_string(), line: t.line, justified });
        if !justified {
            out.push(finding(
                f,
                "H1",
                t.line,
                "`unsafe` without a `// SAFETY:` comment: state the invariant that makes this \
                 sound"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::test_mask;

    fn run(path: &str, src: &str) -> Vec<(String, usize)> {
        let l = lex(src);
        let mask = test_mask(&l.tokens);
        let f = FileInput {
            path,
            tokens: &l.tokens,
            test_mask: &mask,
            comments: &l.comments,
            is_test_file: false,
        };
        check_file(&f).0.into_iter().map(|x| (x.rule.to_string(), x.line)).collect()
    }

    const CORE: &str = "crates/core/src/solver.rs";
    const SERVE: &str = "crates/serve/src/scheduler.rs";

    #[test]
    fn d1_fires_on_hash_containers_only_in_scope() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u8, u8>) {}\n";
        let hits = run(CORE, src);
        assert_eq!(hits, [("D1".to_string(), 1), ("D1".to_string(), 2)]);
        // Out-of-scope crate: no findings.
        assert!(run("crates/workloads/src/graphs.rs", src).is_empty());
        // String/comment mentions: no findings.
        assert!(run(CORE, "// HashMap\nlet s = \"HashMap\";\n").is_empty());
        // Test module: no findings.
        assert!(run(CORE, "#[cfg(test)]\nmod t { use std::collections::HashMap; }\n").is_empty());
    }

    #[test]
    fn d2_fires_on_parallel_reductions_not_sequential_ones() {
        assert_eq!(run(CORE, "let s: f64 = xs.par_iter().map(f).sum();\n"), [("D2".into(), 1)]);
        assert_eq!(
            run(CORE, "let s = xs.into_par_iter().reduce(|| 0.0, g);\n"),
            [("D2".into(), 1)]
        );
        // Sequential sum: fine.
        assert!(run(CORE, "let s: f64 = xs.iter().sum();\n").is_empty());
        // Sum *inside* a closure argument is sequential per item: fine.
        assert!(run(CORE, "let v: Vec<f64> = xs.par_iter().map(|r| r.iter().sum()).collect();\n")
            .is_empty());
        // Reducer in the *next* statement is not part of the chain.
        assert!(run(
            CORE,
            "let v: Vec<f64> = xs.par_iter().map(f).collect();\nlet s: f64 = v.iter().sum();\n"
        )
        .is_empty());
    }

    #[test]
    fn d3_fires_on_clock_rng_env() {
        assert_eq!(run(CORE, "let t = Instant::now();\n"), [("D3".into(), 1)]);
        assert_eq!(run(CORE, "let t = SystemTime::now();\n"), [("D3".into(), 1)]);
        assert_eq!(run(CORE, "let mut r = rand::thread_rng();\n"), [("D3".into(), 1)]);
        assert_eq!(run(CORE, "let v = std::env::var(\"X\");\n"), [("D3".into(), 1)]);
        // `env` not followed by a reader: fine (e.g. a local named env).
        assert!(run(CORE, "let env = 3; let y = env + 1;\n").is_empty());
    }

    #[test]
    fn r1_fires_on_panics_and_indexing() {
        assert_eq!(run(SERVE, "let v = x.unwrap();\n"), [("R1".into(), 1)]);
        assert_eq!(run(SERVE, "let v = x.expect(\"must\");\n"), [("R1".into(), 1)]);
        assert_eq!(run(SERVE, "unreachable!(\"no\");\n"), [("R1".into(), 1)]);
        assert_eq!(run(SERVE, "let v = toks[2];\n"), [("R1".into(), 1)]);
        assert_eq!(run(SERVE, "let v = parts(0)[idx];\n"), [("R1".into(), 1)]);
        // Parser method named `expect` with a byte-literal arg: fine.
        assert!(run(SERVE, "self.expect(b'\"')?;\n").is_empty());
        // Range slicing: fine.
        assert!(run(SERVE, "let v = &bytes[pos..pos + 4];\n").is_empty());
        // Attributes and array literals: fine.
        assert!(run(SERVE, "#[derive(Debug)]\nstruct S { a: [f64; 3] }\n").is_empty());
        // Slice patterns: fine.
        assert!(run(SERVE, "let [a, b] = parts else { return None };\n").is_empty());
        assert!(run(SERVE, "if let [x, rest @ ..] = toks { f(x); }\n").is_empty());
        // Out of scope (solver internals may index freely): fine.
        assert!(run(CORE, "let v = toks[2];\n").is_empty());
    }

    /// The `crates/serve/src/` prefix keeps every service file — present
    /// and future — on the R1 request path; pin the files the persistent
    /// streaming service added (DESIGN.md §13) so a path refactor cannot
    /// silently drop them out of coverage.
    #[test]
    fn r1_covers_the_streaming_service_files() {
        for path in [
            "crates/serve/src/service.rs",
            "crates/serve/src/shard.rs",
            "crates/serve/src/snapshot.rs",
            "crates/serve/src/telemetry.rs",
            "crates/serve/src/transport.rs",
            "crates/cli/src/serve.rs",
        ] {
            assert_eq!(run(path, "let v = x.unwrap();\n"), [("R1".into(), 1)], "{path}");
            assert_eq!(run(path, "let v = toks[2];\n"), [("R1".into(), 1)], "{path}");
        }
        // The serve crate is also a determinism crate: hash-order
        // containers in the service are D1 findings, not just style.
        assert_eq!(
            run("crates/serve/src/service.rs", "use std::collections::HashMap;\n"),
            [("D1".into(), 1)]
        );
    }

    #[test]
    fn h1_requires_safety_comment_and_inventories() {
        let src = "// SAFETY: len checked above\nlet p = unsafe { x.get_unchecked(0) };\n";
        let l = lex(src);
        let mask = test_mask(&l.tokens);
        let f = FileInput {
            path: "crates/linalg/src/vecops.rs",
            tokens: &l.tokens,
            test_mask: &mask,
            comments: &l.comments,
            is_test_file: false,
        };
        let (findings, inv) = check_file(&f);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(inv.len(), 1);
        assert!(inv[0].justified);

        let hits = run("crates/linalg/src/vecops.rs", "let p = unsafe { *q };\n");
        assert_eq!(hits, [("H1".into(), 1)]);
    }

    #[test]
    fn test_files_are_exempt_from_det_and_request_rules() {
        let l = lex("let v = x.unwrap(); use std::collections::HashMap;\n");
        let mask = test_mask(&l.tokens);
        let f = FileInput {
            path: "crates/serve/src/cache.rs",
            tokens: &l.tokens,
            test_mask: &mask,
            comments: &l.comments,
            is_test_file: true,
        };
        assert!(check_file(&f).0.is_empty());
    }
}
