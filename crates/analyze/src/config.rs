//! `audit.toml`: committed, path-scoped allowlists.
//!
//! Inline suppressions are for single sites; when a whole file is exempt
//! from one rule by design (wall-clock *telemetry* in the solver, say),
//! the exemption belongs in a reviewed, committed config instead of
//! being repeated at every use site. The format is a minimal TOML subset
//! — `[[allow]]` tables with `rule` / `path` / `reason` string keys:
//!
//! ```toml
//! [[allow]]
//! rule = "D3"
//! path = "crates/core/src/solver.rs"
//! reason = "wall-clock telemetry only; never read by iteration logic"
//! ```
//!
//! `path` matches the workspace-relative file path exactly or as a
//! directory prefix. Every entry must justify itself (`reason`
//! mandatory) and must match at least one finding — stale entries are
//! flagged (`S3`) so the allowlist cannot rot.

/// One `[[allow]]` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id this entry exempts.
    pub rule: String,
    /// Workspace-relative path (file, or directory prefix).
    pub path: String,
    /// Mandatory justification.
    pub reason: String,
    /// Line of the `[[allow]]` header (for S3 spans).
    pub line: usize,
    /// Matched at least one finding.
    pub used: bool,
}

/// Parsed `audit.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Path-scoped exemptions.
    pub allows: Vec<AllowEntry>,
}

impl Config {
    /// Does an entry exempt `rule` at `file`? Marks every matching entry
    /// used (overlapping entries are all legitimate).
    pub fn allows_finding(&mut self, rule: &str, file: &str) -> bool {
        let mut hit = false;
        for e in &mut self.allows {
            if e.rule == rule && path_matches(&e.path, file) {
                e.used = true;
                hit = true;
            }
        }
        hit
    }
}

/// `pattern` matches `file` exactly or as a directory prefix.
fn path_matches(pattern: &str, file: &str) -> bool {
    let pattern = pattern.trim_end_matches('/');
    file == pattern || file.strip_prefix(pattern).is_some_and(|rest| rest.starts_with('/'))
}

/// Parse the config text.
///
/// # Errors
/// A `line: message` string on any malformed entry (unknown keys, missing
/// `rule`/`path`/`reason`, non-string values).
pub fn parse_config(text: &str) -> Result<Config, String> {
    /// A partially-parsed entry: header line, then `rule`/`path`/`reason`.
    type PartialEntry = (usize, Option<String>, Option<String>, Option<String>);
    let mut allows: Vec<AllowEntry> = Vec::new();
    let mut current: Option<PartialEntry> = None;

    let mut finish = |cur: &mut Option<PartialEntry>| -> Result<(), String> {
        if let Some((line, rule, path, reason)) = cur.take() {
            let missing = |k: &str| format!("line {line}: `[[allow]]` entry is missing `{k}`");
            allows.push(AllowEntry {
                rule: rule.ok_or_else(|| missing("rule"))?,
                path: path.ok_or_else(|| missing("path"))?,
                reason: reason.ok_or_else(|| missing("reason"))?,
                line,
                used: false,
            });
        }
        Ok(())
    };

    for (no, raw) in text.lines().enumerate() {
        let no = no + 1;
        let line = strip_toml_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            finish(&mut current)?;
            current = Some((no, None, None, None));
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {no}: unknown section `{line}` (only `[[allow]]`)"));
        }
        let (key, value) = line
            .split_once('=')
            .map(|(k, v)| (k.trim(), v.trim()))
            .ok_or_else(|| format!("line {no}: expected `key = \"value\"`"))?;
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("line {no}: value of `{key}` must be a double-quoted string"))?;
        if value.is_empty() {
            return Err(format!("line {no}: value of `{key}` must not be empty"));
        }
        let Some((_, rule, path, reason)) = current.as_mut() else {
            return Err(format!("line {no}: `{key}` outside an `[[allow]]` entry"));
        };
        let slot = match key {
            "rule" => rule,
            "path" => path,
            "reason" => reason,
            other => return Err(format!("line {no}: unknown key `{other}`")),
        };
        if slot.is_some() {
            return Err(format!("line {no}: duplicate key `{key}`"));
        }
        *slot = Some(value.to_string());
    }
    finish(&mut current)?;
    Ok(Config { allows })
}

/// Strip a `#` comment, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_matches_paths() {
        let text = "
# telemetry exemptions
[[allow]]
rule = \"D3\"
path = \"crates/core/src/solver.rs\"  # file-scoped
reason = \"telemetry only\"

[[allow]]
rule = \"D1\"
path = \"crates/serve\"
reason = \"dir prefix\"
";
        let mut cfg = parse_config(text).unwrap();
        assert_eq!(cfg.allows.len(), 2);
        assert!(cfg.allows_finding("D3", "crates/core/src/solver.rs"));
        assert!(!cfg.allows_finding("D3", "crates/core/src/solver_extra.rs"));
        assert!(cfg.allows_finding("D1", "crates/serve/src/cache.rs"));
        assert!(!cfg.allows_finding("D1", "crates/serve2/src/cache.rs"));
        assert!(cfg.allows[0].used);
        assert!(cfg.allows[1].used);
    }

    #[test]
    fn missing_keys_are_errors() {
        for text in [
            "[[allow]]\nrule = \"D1\"\npath = \"x\"\n",
            "[[allow]]\nrule = \"D1\"\nreason = \"r\"\n",
            "[[allow]]\npath = \"x\"\nreason = \"r\"\n",
        ] {
            assert!(parse_config(text).is_err(), "{text}");
        }
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(parse_config("rule = \"D1\"\n").is_err(), "key outside entry");
        assert!(parse_config("[allow]\n").is_err(), "wrong section form");
        assert!(parse_config("[[allow]]\nrule = D1\n").is_err(), "unquoted value");
        assert!(parse_config("[[allow]]\nwat = \"x\"\n").is_err(), "unknown key");
        assert!(parse_config("[[allow]]\nrule = \"a\"\nrule = \"b\"\n").is_err(), "dup key");
        assert!(parse_config("[[allow]]\nrule = \"\"\n").is_err(), "empty value");
    }

    #[test]
    fn empty_config_is_fine() {
        let cfg = parse_config("# nothing here\n").unwrap();
        assert!(cfg.allows.is_empty());
    }
}
