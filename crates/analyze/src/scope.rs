//! Test-scope detection over the token stream.
//!
//! The determinism and robustness rules apply to *shipping* code only:
//! `#[cfg(test)]` modules, `#[test]` functions, and files under `tests/`,
//! `benches/`, or `examples/` are exempt. File-level classification is
//! path-based (see [`crate::rules`]); this module handles the in-file
//! part — marking every token that lives inside a test-gated item.
//!
//! The tracker is a brace matcher, not a parser: when it sees an
//! attribute whose tokens contain `cfg ( test` or a bare `test`/`tokio
//! ::test`-style test marker, it marks everything from the end of the
//! attribute through the end of the annotated item (the matching `}` of
//! the first `{` it opens, or the first `;` before any brace for
//! declaration items).

use crate::lexer::{Tok, TokKind};

/// For each token, `true` when it is inside test-gated code.
pub fn test_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "#" && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            let (attr_end, is_test_attr) = scan_attribute(tokens, i + 1);
            if is_test_attr {
                let item_end = item_extent(tokens, attr_end);
                for m in mask.iter_mut().take(item_end).skip(i) {
                    *m = true;
                }
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    mask
}

/// Scan `#[…]` starting at the `[`; returns (index past `]`, is-test).
/// Test attributes: `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]`,
/// and dotted paths ending in `::test` (`#[tokio::test]`).
fn scan_attribute(tokens: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut j = open;
    let mut is_test = false;
    let mut saw_cfg = false;
    let mut saw_not = false;
    while j < tokens.len() {
        let t = &tokens[j];
        match t.text.as_str() {
            "[" | "(" | "{" => depth += 1,
            "]" | ")" | "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return (j + 1, is_test && !saw_not);
                }
            }
            "cfg" if t.kind == TokKind::Ident => saw_cfg = true,
            // `#[cfg(not(test))]` is live code, not test code.
            "not" if t.kind == TokKind::Ident && saw_cfg => saw_not = true,
            "test" if t.kind == TokKind::Ident => {
                // `#[test]` (depth 1, right after `[`) or `test` anywhere
                // inside a `cfg(...)` argument list.
                if depth == 1 || saw_cfg {
                    is_test = true;
                }
                // `#[foo::test]` style markers.
                if j >= 2 && tokens[j - 1].text == ":" && tokens[j - 2].text == ":" {
                    is_test = true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    (j, is_test && !saw_not)
}

/// The extent of the item starting at `start` (just past its attributes):
/// index one past the matching `}` of its first brace block, or one past
/// the first top-level `;` (declaration items), whichever comes first.
/// Skips over any further attributes on the item itself.
fn item_extent(tokens: &[Tok], start: usize) -> usize {
    let mut j = start;
    // Further attributes (`#[cfg(test)] #[allow(…)] mod t { … }`).
    while j < tokens.len()
        && tokens[j].text == "#"
        && tokens.get(j + 1).map(|t| t.text.as_str()) == Some("[")
    {
        let (end, _) = scan_attribute(tokens, j + 1);
        j = end;
    }
    let mut depth = 0usize;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            ";" if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn masked_idents(src: &str) -> Vec<(String, bool)> {
        let l = lex(src);
        let mask = test_mask(&l.tokens);
        l.tokens
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.kind == TokKind::Ident)
            .map(|(t, m)| (t.text.clone(), *m))
            .collect()
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let src = "
            fn live() { HashMap::new(); }
            #[cfg(test)]
            mod tests {
                fn helper() { HashSet::new(); }
            }
            fn also_live() {}
        ";
        let ids = masked_idents(src);
        let get = |name: &str| ids.iter().find(|(n, _)| n == name).map(|(_, m)| *m);
        assert_eq!(get("HashMap"), Some(false));
        assert_eq!(get("HashSet"), Some(true));
        assert_eq!(get("also_live"), Some(false));
    }

    #[test]
    fn test_fn_is_masked() {
        let src = "
            #[test]
            fn check() { thread_rng(); }
            fn live() { Instant::now(); }
        ";
        let ids = masked_idents(src);
        let get = |name: &str| ids.iter().find(|(n, _)| n == name).map(|(_, m)| *m);
        assert_eq!(get("thread_rng"), Some(true));
        assert_eq!(get("Instant"), Some(false));
    }

    #[test]
    fn non_test_attributes_do_not_mask() {
        let src = "#[derive(Debug)] struct S { m: HashMap<u8, u8> }";
        let ids = masked_idents(src);
        assert!(ids.iter().any(|(n, m)| n == "HashMap" && !m), "{ids:?}");
    }

    #[test]
    fn stacked_attributes_after_cfg_test() {
        let src = "
            #[cfg(test)]
            #[allow(dead_code)]
            mod t { fn f() { HashMap::new(); } }
            fn live() { HashSet::new(); }
        ";
        let ids = masked_idents(src);
        let get = |name: &str| ids.iter().find(|(n, _)| n == name).map(|(_, m)| *m);
        assert_eq!(get("HashMap"), Some(true));
        assert_eq!(get("HashSet"), Some(false));
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(feature = \"x\")] fn f() { HashMap::new(); }";
        let ids = masked_idents(src);
        assert!(ids.iter().any(|(n, m)| n == "HashMap" && !m), "{ids:?}");
    }

    #[test]
    fn declaration_item_ends_at_semicolon() {
        let src = "#[cfg(test)] use std::collections::HashMap; fn live() { HashSet::new(); }";
        let ids = masked_idents(src);
        let get = |name: &str| ids.iter().find(|(n, _)| n == name).map(|(_, m)| *m);
        assert_eq!(get("HashMap"), Some(true));
        assert_eq!(get("HashSet"), Some(false));
    }
}
