//! `psdp-analyze` — the workspace determinism & robustness audit
//! (`psdp-audit`).
//!
//! A dependency-free static-analysis pass over the workspace's Rust
//! sources, enforcing the source-level invariants behind the project's
//! reproducibility contracts (DESIGN.md §11): no hash-order iteration in
//! deterministic modules (`D1`), no scheduling-dependent float reductions
//! (`D2`), no ambient clocks/randomness/env in solver paths (`D3`), no
//! panics or unchecked indexing on serving request paths (`R1`), and a
//! `SAFETY:`-justified inventory of every `unsafe` block (`H1`).
//!
//! The pipeline per file: [`lexer::lex`] → [`scope::test_mask`] →
//! [`suppress::parse_suppressions`] → [`rules::check_file`] → inline
//! suppressions → `audit.toml` allowlist ([`config`]) → [`report::Report`].
//! Three meta-rules keep the escape hatches honest: `S1` (malformed
//! suppression, error), `S2` (suppression that matched nothing, warning),
//! `S3` (allowlist entry that matched nothing, warning). Warnings are
//! fatal under `--deny-warnings`, which is how CI runs.
//!
//! Everything here is hand-rolled (lexer, TOML subset, JSON writer): the
//! build environment is offline, and the audit must never be the thing
//! that drags nondeterministic or unvetted dependencies into the tree.

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;
pub mod suppress;

use std::path::{Path, PathBuf};

use report::{Finding, Report, Severity};
use rules::FileInput;

/// Directories never walked (fixtures are audit *inputs*, shims are
/// test-only stand-ins for external crates, target/.git are artifacts).
const SKIP_DIRS: &[&str] = &["target", ".git", "tests/fixtures", "crates/shims"];

/// Audit options.
#[derive(Debug, Default)]
pub struct Options {
    /// Explicit `audit.toml` path; `None` means `<root>/audit.toml` if it
    /// exists, else an empty config.
    pub config_path: Option<PathBuf>,
}

/// Run the audit over the workspace at `root`.
///
/// # Errors
/// A human-readable message when the root is unreadable or the config is
/// malformed. Unreadable individual source files are reported the same
/// way — an audit that silently skips files is worse than one that fails.
pub fn run_audit(root: &Path, opts: &Options) -> Result<Report, String> {
    let mut cfg = load_config(root, opts)?;
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();

    let mut report = Report::default();
    for rel in &files {
        let abs = root.join(rel);
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("{}: cannot read: {e}", rel.display()))?;
        audit_source(&rel_str(rel), &src, &mut cfg, &mut report);
    }
    report.files_scanned = files.len();

    for e in cfg.allows.iter().filter(|e| !e.used) {
        report.findings.push(Finding {
            rule: "S3",
            severity: Severity::Warning,
            file: config_name(root, opts),
            line: e.line,
            message: format!(
                "allowlist entry (rule `{}`, path `{}`) matched no finding — remove it so the \
                 exemption cannot outlive its cause",
                e.rule, e.path,
            ),
        });
    }
    report.sort();
    Ok(report)
}

/// Audit a single in-memory source file, appending to `report`. Public so
/// the fixture corpus tests can drive exact sources through the full
/// pipeline (suppressions and config included).
pub fn audit_source(rel_path: &str, src: &str, cfg: &mut config::Config, report: &mut Report) {
    let lexed = lexer::lex(src);
    let mask = scope::test_mask(&lexed.tokens);
    let (mut supps, bad) = suppress::parse_suppressions(&lexed.comments);

    for b in bad {
        report.findings.push(Finding {
            rule: "S1",
            severity: Severity::Error,
            file: rel_path.to_string(),
            line: b.line,
            message: format!("malformed suppression: {}", b.message),
        });
    }

    let input = FileInput {
        path: rel_path,
        tokens: &lexed.tokens,
        test_mask: &mask,
        comments: &lexed.comments,
        is_test_file: is_test_path(rel_path),
    };
    let (findings, unsafe_sites) = rules::check_file(&input);
    report.unsafe_sites.extend(unsafe_sites);

    for f in findings {
        if suppress::covered(&mut supps, f.rule, f.line) {
            report.suppressions_used += 1;
        } else if !cfg.allows_finding(f.rule, rel_path) {
            report.findings.push(f);
        }
    }

    for s in supps.iter().filter(|s| !s.used) {
        report.findings.push(Finding {
            rule: "S2",
            severity: Severity::Warning,
            file: rel_path.to_string(),
            line: s.line,
            message: format!(
                "suppression for `{}` matched no finding — remove it so it cannot mask a \
                 future violation",
                s.rules.join(", "),
            ),
        });
    }
}

fn load_config(root: &Path, opts: &Options) -> Result<config::Config, String> {
    let path = match &opts.config_path {
        Some(p) => p.clone(),
        None => {
            let default = root.join("audit.toml");
            if !default.exists() {
                return Ok(config::Config::default());
            }
            default
        }
    };
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("{}: cannot read config: {e}", path.display()))?;
    config::parse_config(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn config_name(root: &Path, opts: &Options) -> String {
    match &opts.config_path {
        Some(p) => p.display().to_string(),
        None => root.join("audit.toml").display().to_string(),
    }
}

/// Collect workspace-relative paths of every `.rs` file under `dir`,
/// skipping [`SKIP_DIRS`]. Sorted by the caller for a deterministic walk —
/// the audit holds itself to its own rules.
fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("{}: cannot read dir: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: read_dir entry: {e}", dir.display()))?;
        let path = entry.path();
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        if path.is_dir() {
            if SKIP_DIRS.iter().any(|s| rel_str(&rel) == *s) {
                continue;
            }
            walk(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (stable across platforms
/// for rule scoping and report output).
fn rel_str(p: &Path) -> String {
    p.to_string_lossy().replace('\\', "/")
}

/// Path-based test classification: integration tests, benches, and
/// examples are exempt from the determinism/robustness rules (H1 still
/// applies everywhere).
fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit_one(path: &str, src: &str) -> Report {
        let mut cfg = config::Config::default();
        let mut report = Report::default();
        audit_source(path, src, &mut cfg, &mut report);
        report.sort();
        report
    }

    #[test]
    fn suppressed_finding_is_counted_not_reported() {
        let src = "// psdp-audit: allow(D1, reason = \"keys are sorted before iteration\")\n\
                   use std::collections::HashMap;\n";
        let r = audit_one("crates/core/src/solver.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.suppressions_used, 1);
    }

    #[test]
    fn unused_suppression_is_a_warning() {
        let src = "// psdp-audit: allow(D1, reason = \"nothing here\")\nfn f() {}\n";
        let r = audit_one("crates/core/src/solver.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "S2");
        assert_eq!(r.findings[0].severity, Severity::Warning);
        assert!(!r.is_clean(true));
        assert!(r.is_clean(false));
    }

    #[test]
    fn malformed_suppression_is_an_error() {
        let src = "// psdp-audit: allow(D1)\nuse std::collections::HashMap;\n";
        let r = audit_one("crates/core/src/solver.rs", src);
        // S1 for the malformed comment, and the D1 still fires (a broken
        // suppression must not suppress).
        let rules: Vec<&str> = r.findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, ["S1", "D1"]);
    }

    #[test]
    fn config_allowlist_exempts_and_tracks_use() {
        let mut cfg = config::parse_config(
            "[[allow]]\nrule = \"D3\"\npath = \"crates/core/src/solver.rs\"\nreason = \"telemetry\"\n",
        )
        .unwrap();
        let mut report = Report::default();
        audit_source(
            "crates/core/src/solver.rs",
            "let t = Instant::now();\n",
            &mut cfg,
            &mut report,
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(cfg.allows[0].used);
    }

    #[test]
    fn test_paths_are_classified() {
        assert!(is_test_path("tests/determinism.rs"));
        assert!(is_test_path("crates/core/tests/props.rs"));
        assert!(is_test_path("crates/bench/benches/psi.rs"));
        assert!(is_test_path("examples/solve.rs"));
        assert!(!is_test_path("crates/core/src/solver.rs"));
        // A module merely *named* tests under src/ is still live code.
        assert!(!is_test_path("crates/core/src/tests_util.rs"));
    }
}
