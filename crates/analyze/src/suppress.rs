//! Inline suppressions: `// psdp-audit: allow(D1, reason = "…")`.
//!
//! A suppression lives in a line comment and covers findings of the named
//! rule(s) on its own line (trailing comment) or on the next source line
//! (standalone comment line). The `reason` is mandatory — a suppression
//! that does not say *why* the invariant holds anyway is itself a
//! violation (`S1`) — and a suppression that matches no finding is dead
//! weight that would silently keep future violations invisible, so it is
//! flagged too (`S2`, a warning so `--deny-warnings` gates it in CI).

use crate::lexer::Comment;

/// One parsed inline suppression.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rules this suppression covers (`allow(D1)` or `allow(D1, R1, …)`).
    pub rules: Vec<String>,
    /// Mandatory justification.
    pub reason: String,
    /// Line the comment starts on.
    pub line: usize,
    /// Matched at least one finding.
    pub used: bool,
}

/// A malformed suppression (missing reason / unparsable rule list).
#[derive(Debug, Clone)]
pub struct BadSuppression {
    /// Line of the comment.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

/// The marker that introduces a suppression inside a line comment.
pub const MARKER: &str = "psdp-audit:";

/// Extract all suppressions (and malformed ones) from a file's comments.
pub fn parse_suppressions(comments: &[Comment]) -> (Vec<Suppression>, Vec<BadSuppression>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // The marker must open the comment: prose that merely *mentions*
        // `psdp-audit:` mid-sentence (docs, this file) is not a
        // suppression.
        let Some(rest) = c.text.strip_prefix(MARKER) else { continue };
        if !c.is_line {
            bad.push(BadSuppression {
                line: c.line,
                message: "suppressions must be line comments (`// psdp-audit: …`)".to_string(),
            });
            continue;
        }
        match parse_allow(rest.trim()) {
            Ok((rules, reason)) => {
                ok.push(Suppression { rules, reason, line: c.line, used: false })
            }
            Err(msg) => bad.push(BadSuppression { line: c.line, message: msg }),
        }
    }
    (ok, bad)
}

/// Parse `allow(RULE[, RULE…], reason = "…")`.
fn parse_allow(s: &str) -> Result<(Vec<String>, String), String> {
    let body = s
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('('))
        .ok_or_else(|| "expected `allow(RULE, reason = \"…\")`".to_string())?;
    let body = body.trim_end();
    let body = body
        .strip_suffix(')')
        .ok_or_else(|| "unterminated `allow(…)` (missing `)`)".to_string())?;

    let (rules_part, reason_part) = match body.find("reason") {
        Some(i) => (&body[..i], &body[i..]),
        None => return Err("suppression is missing the mandatory `reason = \"…\"`".to_string()),
    };
    let reason = reason_part
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .ok_or_else(|| "malformed `reason = \"…\"`".to_string())?;
    let reason = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| "`reason` must be a double-quoted string".to_string())?;
    if reason.trim().is_empty() {
        return Err("`reason` must not be empty".to_string());
    }

    let rules: Vec<String> = rules_part
        .split(',')
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .map(str::to_string)
        .collect();
    if rules.is_empty() {
        return Err("suppression names no rule (e.g. `allow(D1, reason = \"…\")`)".to_string());
    }
    for r in &rules {
        if !r.chars().all(|c| c.is_ascii_alphanumeric()) {
            return Err(format!("malformed rule id `{r}`"));
        }
    }
    Ok((rules, reason.to_string()))
}

/// Does any suppression cover `rule` at `line`? Marks the first match
/// used. A suppression on line `l` covers lines `l` and `l + 1`.
pub fn covered(supps: &mut [Suppression], rule: &str, line: usize) -> bool {
    for s in supps.iter_mut() {
        if (s.line == line || s.line + 1 == line) && s.rules.iter().any(|r| r == rule) {
            s.used = true;
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn supps(src: &str) -> (Vec<Suppression>, Vec<BadSuppression>) {
        parse_suppressions(&lex(src).comments)
    }

    #[test]
    fn parses_single_and_multi_rule() {
        let (ok, bad) = supps(
            "// psdp-audit: allow(D1, reason = \"keyed access only\")\n\
             // psdp-audit: allow(R1, D3, reason = \"bounds checked above\")\n",
        );
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(ok.len(), 2);
        assert_eq!(ok[0].rules, ["D1"]);
        assert_eq!(ok[0].reason, "keyed access only");
        assert_eq!(ok[1].rules, ["R1", "D3"]);
    }

    #[test]
    fn reason_is_mandatory() {
        let (ok, bad) = supps("// psdp-audit: allow(D1)\n");
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("reason"), "{}", bad[0].message);

        let (ok, bad) = supps("// psdp-audit: allow(D1, reason = \"\")\n");
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn malformed_forms_are_flagged() {
        for src in [
            "// psdp-audit: allow D1\n",
            "// psdp-audit: allow(, reason = \"x\")\n",
            "// psdp-audit: allow(D1, reason = x)\n",
            "// psdp-audit: allow(D-1, reason = \"x\")\n",
            "/* psdp-audit: allow(D1, reason = \"x\") */\n",
        ] {
            let (ok, bad) = supps(src);
            assert!(ok.is_empty(), "{src}");
            assert_eq!(bad.len(), 1, "{src}");
        }
    }

    #[test]
    fn coverage_is_same_or_next_line_and_marks_used() {
        let (mut ok, _) = supps("let x = 1; // psdp-audit: allow(D1, reason = \"why\")\n");
        assert!(covered(&mut ok, "D1", 1));
        assert!(ok[0].used);
        assert!(covered(&mut ok, "D1", 2));
        assert!(!covered(&mut ok, "D1", 3));
        assert!(!covered(&mut ok, "R1", 1));
    }

    #[test]
    fn unrelated_comments_ignored() {
        let (ok, bad) = supps("// plain comment mentioning allow(D1)\n");
        assert!(ok.is_empty());
        assert!(bad.is_empty());
    }
}
