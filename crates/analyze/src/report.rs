//! Findings and report rendering (human and `--json`).

use std::fmt::Write as _;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the audit unconditionally.
    Error,
    /// Fails only under `--deny-warnings` (unused suppressions and
    /// allowlist entries).
    Warning,
}

/// One audit finding, anchored to a `file:line` span.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`D1`, `R1`, `S2`, …).
    pub rule: &'static str,
    /// Severity (see [`Severity`]).
    pub severity: Severity,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// What was found and what to do instead.
    pub message: String,
}

/// One `unsafe` occurrence (H1 inventory — emitted even when justified).
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// True when a `// SAFETY:` comment covers it.
    pub justified: bool,
}

/// Everything one audit run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations and warnings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Every `unsafe` site in the walked source (H1 inventory).
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Files audited.
    pub files_scanned: usize,
    /// Inline suppressions that matched a finding.
    pub suppressions_used: usize,
}

impl Report {
    /// Errors (always fatal).
    pub fn errors(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Error).count()
    }

    /// Warnings (fatal under `--deny-warnings`).
    pub fn warnings(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Warning).count()
    }

    /// Exit status the CLI should use.
    pub fn is_clean(&self, deny_warnings: bool) -> bool {
        self.errors() == 0 && (!deny_warnings || self.warnings() == 0)
    }

    /// Canonical ordering: file, then line, then rule.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
        self.unsafe_sites.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    }

    /// Human-readable rendering.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let tag = match f.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            let _ = writeln!(out, "{tag}[{}] {}:{}: {}", f.rule, f.file, f.line, f.message);
        }
        if !self.unsafe_sites.is_empty() {
            let _ = writeln!(out, "unsafe inventory ({} sites):", self.unsafe_sites.len());
            for s in &self.unsafe_sites {
                let mark = if s.justified { "SAFETY ok" } else { "missing SAFETY" };
                let _ = writeln!(out, "  {}:{} ({mark})", s.file, s.line);
            }
        }
        let _ = writeln!(
            out,
            "psdp-audit: {} files, {} errors, {} warnings, {} suppressions used, {} unsafe sites",
            self.files_scanned,
            self.errors(),
            self.warnings(),
            self.suppressions_used,
            self.unsafe_sites.len(),
        );
        out
    }

    /// Machine-readable rendering (stable key order, one object).
    pub fn json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let sev = match f.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            let _ = write!(
                out,
                "{{\"rule\":{},\"severity\":{},\"file\":{},\"line\":{},\"message\":{}}}",
                json_str(f.rule),
                json_str(sev),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
            );
        }
        out.push_str("],\"unsafe_inventory\":[");
        for (i, s) in self.unsafe_sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"file\":{},\"line\":{},\"justified\":{}}}",
                json_str(&s.file),
                s.line,
                s.justified,
            );
        }
        let _ = write!(
            out,
            "],\"files_scanned\":{},\"errors\":{},\"warnings\":{},\"suppressions_used\":{}}}",
            self.files_scanned,
            self.errors(),
            self.warnings(),
            self.suppressions_used,
        );
        out.push('\n');
        out
    }
}

/// Minimal JSON string escaping (paths and rule messages are near-ASCII,
/// but stay correct on quotes/backslashes/control bytes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report {
            findings: vec![
                Finding {
                    rule: "S2",
                    severity: Severity::Warning,
                    file: "b.rs".into(),
                    line: 3,
                    message: "unused suppression".into(),
                },
                Finding {
                    rule: "D1",
                    severity: Severity::Error,
                    file: "a.rs".into(),
                    line: 10,
                    message: "HashMap in deterministic module".into(),
                },
            ],
            unsafe_sites: vec![UnsafeSite { file: "c.rs".into(), line: 7, justified: true }],
            files_scanned: 3,
            suppressions_used: 1,
        };
        r.sort();
        r
    }

    #[test]
    fn ordering_and_counts() {
        let r = sample();
        assert_eq!(r.findings[0].rule, "D1");
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert!(!r.is_clean(false));
        let clean = Report::default();
        assert!(clean.is_clean(true));
    }

    #[test]
    fn deny_warnings_gates_warnings() {
        let mut r = sample();
        r.findings.retain(|f| f.severity == Severity::Warning);
        assert!(r.is_clean(false));
        assert!(!r.is_clean(true));
    }

    #[test]
    fn renderings_contain_spans() {
        let r = sample();
        let h = r.human();
        assert!(h.contains("error[D1] a.rs:10"), "{h}");
        assert!(h.contains("warning[S2] b.rs:3"), "{h}");
        assert!(h.contains("unsafe inventory (1 sites)"), "{h}");
        let j = r.json();
        assert!(j.contains("\"rule\":\"D1\""), "{j}");
        assert!(j.contains("\"line\":10"), "{j}");
        assert!(j.contains("\"justified\":true"), "{j}");
        assert!(j.ends_with("}\n"), "{j}");
    }
}
