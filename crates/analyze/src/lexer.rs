//! A hand-rolled Rust lexer, just deep enough for source-level auditing.
//!
//! The rules in [`crate::rules`] only need a faithful *token stream*: they
//! must never mistake `"HashMap"` inside a string literal, a comment, or a
//! raw string for the identifier `HashMap`. So the lexer's job is exact
//! skipping of every literal form Rust has — line and (nested) block
//! comments, string/byte-string literals with escapes, raw strings with
//! arbitrary `#` fences, char and byte literals (disambiguated from
//! lifetimes) — while tagging every surviving token with its 1-based line.
//!
//! Comments are not discarded: they come back in a separate list, because
//! inline suppressions (`// psdp-audit: allow(...)`) and `// SAFETY:`
//! justifications live in comments.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, `r#type`).
    Ident,
    /// Numeric literal.
    Num,
    /// String or byte-string literal (escapes *not* resolved — the rules
    /// never look inside).
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Any single punctuation byte (`.`, `[`, `!`, …).
    Punct,
}

/// One token: kind, verbatim text, and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Verbatim source text (for `Str`, includes the quotes/fences).
    pub text: String,
    /// 1-based line number of the token's first byte.
    pub line: usize,
}

/// A comment, kept separately from the token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body *without* the `//` / `/*` markers, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
    /// True for `//…` comments (suppressions are line-comment-only).
    pub is_line: bool,
}

/// Lexed file: tokens plus comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, literals opaque, comments removed.
    pub tokens: Vec<Tok>,
    /// Every comment with its starting line.
    pub comments: Vec<Comment>,
}

/// Lex `src`. Invalid input never panics: unterminated literals swallow
/// the rest of the file (the compiler will reject such a file anyway; the
/// audit's job is merely to not misfire on it).
pub fn lex(src: &str) -> Lexed {
    Lexer { b: src.as_bytes(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer<'a> {
    b: &'a [u8],
    pos: usize,
    line: usize,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn peek(&self, off: usize) -> Option<u8> {
        self.b.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'b' if self.peek(1) == Some(b'\'') => {
                    let line = self.line;
                    self.bump();
                    self.bump();
                    self.char_body(line, "b'");
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    let line = self.line;
                    self.bump();
                    self.quoted_string(line);
                }
                b'r' | b'b' if self.is_raw_string_start() => self.raw_string(),
                c if c.is_ascii_alphabetic() || c == b'_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    let c = self.bump().unwrap_or(b' ');
                    self.push(TokKind::Punct, (c as char).to_string(), line);
                }
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokKind, text: String, line: usize) {
        self.out.tokens.push(Tok { kind, text, line });
    }

    /// At `r`/`b`: does a raw (byte) string start here (`r"`, `r#`, `br"`,
    /// `br#`)? `r#ident` (raw identifiers) must *not* match.
    fn is_raw_string_start(&self) -> bool {
        let mut i = 0;
        if self.peek(i) == Some(b'b') {
            i += 1;
        }
        if self.peek(i) != Some(b'r') {
            return false;
        }
        i += 1;
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        // `r#foo` (raw identifier) has ident chars here, not a quote.
        self.peek(i) == Some(b'"')
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        // Strip any further `/` (doc comments) and `!`.
        while matches!(self.peek(0), Some(b'/' | b'!')) {
            self.bump();
        }
        let start = self.pos;
        while self.peek(0).is_some_and(|c| c != b'\n') {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.b[start..self.pos]).trim().to_string();
        self.out.comments.push(Comment { text, line, is_line: true });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let start = self.pos;
        let mut depth = 1usize;
        let mut end = self.pos;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    end = self.pos;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => {
                    end = self.pos;
                    break;
                }
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..end]).trim().to_string();
        self.out.comments.push(Comment { text, line, is_line: false });
    }

    fn string(&mut self) {
        let line = self.line;
        self.quoted_string(line);
    }

    /// Consume a `"`-delimited string starting at the current `"`.
    fn quoted_string(&mut self, line: usize) {
        let start = self.pos;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
        self.push(TokKind::Str, text, line);
    }

    fn raw_string(&mut self) {
        let line = self.line;
        let start = self.pos;
        if self.peek(0) == Some(b'b') {
            self.bump();
        }
        self.bump(); // r
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        loop {
            match self.bump() {
                None => break,
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some(b'#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
        self.push(TokKind::Str, text, line);
    }

    /// At a `'`: either a lifetime (`'a`, `'static`) or a char literal
    /// (`'a'`, `'\u{1f600}'`). A lifetime is `'` + ident with *no* closing
    /// quote; anything else with a closing quote is a char.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // Escape ⇒ definitely a char literal.
        if self.peek(1) == Some(b'\\') {
            self.bump();
            self.char_body(line, "'");
            return;
        }
        // `'X'` (any single char then quote) ⇒ char literal.
        let second = self.peek(1);
        if second.is_some() && self.peek(2) == Some(b'\'') {
            self.bump();
            self.char_body(line, "'");
            return;
        }
        // Multi-byte UTF-8 char literal: scan to the quote if it comes
        // before anything that can't be inside a char.
        if second.is_some_and(|c| c >= 0x80) {
            self.bump();
            self.char_body(line, "'");
            return;
        }
        // Otherwise: lifetime. Consume `'` + ident chars.
        self.bump();
        let start = self.pos;
        while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
            self.bump();
        }
        let name = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
        self.push(TokKind::Lifetime, format!("'{name}"), line);
    }

    /// Consume a char/byte literal body after the opening quote.
    fn char_body(&mut self, line: usize, prefix: &str) {
        let start = self.pos;
        while let Some(c) = self.bump() {
            match c {
                b'\\' => {
                    self.bump();
                }
                b'\'' => break,
                _ => {}
            }
        }
        let body = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
        self.push(TokKind::Char, format!("{prefix}{body}"), line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        // Raw identifier prefix `r#`.
        if self.peek(0) == Some(b'r') && self.peek(1) == Some(b'#') {
            self.bump();
            self.bump();
        }
        while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
        let text = text.strip_prefix("r#").unwrap_or(&text).to_string();
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        // Good enough for auditing: consume digits, `_`, hex/oct/bin
        // prefixes, exponents, type suffixes, and a fractional part — but
        // never a `..` (range) after the integer part.
        while let Some(c) = self.peek(0) {
            let frac = c == b'.' && self.peek(1) != Some(b'.');
            if c.is_ascii_alphanumeric() || c == b'_' || frac {
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
        self.push(TokKind::Num, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            let a = "HashMap in a string";
            // HashMap in a line comment
            /* HashMap in a /* nested */ block comment */
            let b = r#"HashMap in a raw "string" with fences"#;
            let c = b"HashMap bytes";
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|i| *i == "HashMap").count(), 1);
        let l = lex(src);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("HashMap in a line comment"));
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; let e = 'ψ'; }";
        let l = lex(src);
        let lifetimes: Vec<_> =
            l.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| &t.text).collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(), 3);
    }

    #[test]
    fn byte_literals_do_not_eat_code() {
        // The byte literal `b'"'` once confused naive lexers into string
        // mode — everything after it must still tokenize.
        let src = "self.expect(b'\"')?; let h = HashSet::new();";
        let ids = idents(src);
        assert!(ids.contains(&"HashSet".to_string()), "{ids:?}");
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let ids = idents("let r#type = 1; let x = r\"raw\";");
        assert!(ids.contains(&"type".to_string()));
        assert_eq!(
            lex("let x = r\"raw\";").tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
    }

    #[test]
    fn lines_are_tracked() {
        let src = "a\nb\n  c";
        let l = lex(src);
        let lines: Vec<usize> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 3]);
    }

    #[test]
    fn doc_comments_collected() {
        let l = lex("/// doc line\n//! inner\nfn x() {}");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text, "doc line");
    }

    #[test]
    fn numbers_do_not_absorb_ranges() {
        let l = lex("for i in 0..10 { a[1..] }");
        let texts: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"0"));
        assert!(texts.contains(&"10"));
        assert_eq!(texts.iter().filter(|t| **t == ".").count(), 4);
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        lex("let s = \"unterminated");
        lex("let s = r#\"unterminated");
        lex("/* unterminated");
        lex("let c = '");
    }
}
