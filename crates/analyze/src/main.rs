//! `psdp-audit` CLI: run the workspace determinism & robustness audit.
//!
//! ```text
//! psdp-analyze [--root PATH] [--config FILE] [--json] [--deny-warnings]
//! ```
//!
//! Exit status: `0` clean, `1` findings, `2` usage/config error. CI runs
//! `cargo run -p psdp-analyze -- --deny-warnings` as a fail-fast gate
//! before the test suite.

use std::path::PathBuf;
use std::process::ExitCode;

use psdp_analyze::{run_audit, Options};

const USAGE: &str = "\
psdp-audit: workspace determinism & robustness lint (DESIGN.md §11)

usage: psdp-analyze [--root PATH] [--config FILE] [--json] [--deny-warnings]

  --root PATH       workspace root to audit (default: current directory)
  --config FILE     audit.toml allowlist (default: <root>/audit.toml if present)
  --json            machine-readable report on stdout
  --deny-warnings   treat unused suppressions/allowlist entries as fatal
";

struct Cli {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    deny_warnings: bool,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli { root: PathBuf::from("."), config: None, json: false, deny_warnings: false };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                cli.root = it.next().map(PathBuf::from).ok_or("--root needs a path")?;
            }
            "--config" => {
                cli.config = Some(it.next().map(PathBuf::from).ok_or("--config needs a file")?);
            }
            "--json" => cli.json = true,
            "--deny-warnings" => cli.deny_warnings = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("psdp-audit: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let opts = Options { config_path: cli.config };
    let report = match run_audit(&cli.root, &opts) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("psdp-audit: {msg}");
            return ExitCode::from(2);
        }
    };

    if cli.json {
        print!("{}", report.json());
    } else {
        print!("{}", report.human());
    }
    if report.is_clean(cli.deny_warnings) {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
