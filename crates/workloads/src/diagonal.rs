//! Diagonal (positive LP) instances — the SDP ⊇ LP embedding.
//!
//! Positive LPs embed into positive SDPs as diagonal constraint matrices;
//! Luby–Nisan / Young solve exactly this case. These generators provide the
//! cross-validation workloads where our matrix solver, the scalar Young
//! solver, and exact simplex must all agree.

use psdp_parallel::rng_for;
use psdp_sparse::PsdMatrix;
use rand::Rng;

/// Random dense-ish positive LP as diagonal matrices: `n` columns over `m`
/// rows with the given density and values in `(0.1, 1.0]`.
pub fn random_lp_diagonal(m: usize, n: usize, density: f64, seed: u64) -> Vec<PsdMatrix> {
    assert!(m > 0 && n > 0);
    assert!((0.0..=1.0).contains(&density));
    (0..n)
        .map(|i| {
            let mut rng = rng_for(seed, i as u64);
            let mut d: Vec<f64> =
                (0..m)
                    .map(|_| {
                        if rng.gen_bool(density.max(1e-9)) {
                            rng.gen_range(0.1..1.0)
                        } else {
                            0.0
                        }
                    })
                    .collect();
            // Guarantee a nonzero trace (PackingInstance rejects zero matrices).
            if d.iter().all(|&v| v == 0.0) {
                let j = rng.gen_range(0..m);
                d[j] = rng.gen_range(0.1..1.0);
            }
            PsdMatrix::Diagonal(d)
        })
        .collect()
}

/// Fractional set-cover-like packing instance: element `j` (row) is covered
/// by the sets (columns) containing it; the packing dual asks for maximum
/// total set weight with every element's load ≤ 1.
///
/// Each of the `n` sets contains `set_size` random elements of an
/// `m`-element universe (with replacement, deduplicated).
pub fn set_cover_packing(m: usize, n: usize, set_size: usize, seed: u64) -> Vec<PsdMatrix> {
    assert!(m > 0 && n > 0 && set_size > 0);
    (0..n)
        .map(|i| {
            let mut rng = rng_for(seed, 10_000 + i as u64);
            let mut d = vec![0.0; m];
            for _ in 0..set_size {
                d[rng.gen_range(0..m)] = 1.0;
            }
            if d.iter().all(|&v| v == 0.0) {
                d[0] = 1.0;
            }
            PsdMatrix::Diagonal(d)
        })
        .collect()
}

/// Extract the diagonal columns of a diagonal instance (for handing to the
/// scalar LP baselines).
///
/// # Panics
/// Panics if any matrix is not diagonal.
pub fn diagonal_columns(mats: &[PsdMatrix]) -> Vec<Vec<f64>> {
    mats.iter()
        .map(|a| match a {
            PsdMatrix::Diagonal(d) => d.clone(),
            _ => panic!("diagonal_columns: non-diagonal constraint"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_lp_nonzero_and_deterministic() {
        let a = random_lp_diagonal(6, 4, 0.5, 3);
        let b = random_lp_diagonal(6, 4, 0.5, 3);
        for (x, y) in a.iter().zip(&b) {
            assert!(x.trace() > 0.0);
            assert_eq!(x.to_dense().as_slice(), y.to_dense().as_slice());
        }
    }

    #[test]
    fn zero_density_still_valid() {
        // Degenerate density: the fallback guarantees one entry per column.
        for a in random_lp_diagonal(5, 3, 0.0, 1) {
            assert!(a.trace() > 0.0);
        }
    }

    #[test]
    fn set_cover_zero_one_entries() {
        for a in set_cover_packing(10, 5, 3, 2) {
            if let PsdMatrix::Diagonal(d) = a {
                assert!(d.iter().all(|&v| v == 0.0 || v == 1.0));
                assert!(d.contains(&1.0));
            } else {
                panic!("expected diagonal");
            }
        }
    }

    #[test]
    fn columns_roundtrip() {
        let mats = random_lp_diagonal(4, 3, 0.8, 9);
        let cols = diagonal_columns(&mats);
        assert_eq!(cols.len(), 3);
        assert_eq!(cols[0].len(), 4);
    }
}
