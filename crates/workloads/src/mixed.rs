//! Mixed packing–covering instance generators.
//!
//! Two families drive the mixed-solver experiments (E12) and the
//! differential tests:
//!
//! * [`mixed_lp_diagonal`] — diagonal-embedded random mixed LPs. Positive
//!   mixed LPs (`Px ≤ 1`, `Cx ≥ σ·1`) embed into mixed SDPs as diagonal
//!   matrices, where the exact simplex threshold and the scalar Young
//!   solver (`psdp_baselines::mixed_lp`) are independent oracles — the
//!   differential-testing workload.
//! * [`mixed_edge_cover`] — a graph family: packing side = edge
//!   Laplacians (spectral capacity, exactly the packing experiments'
//!   constraints), covering side = the same Laplacians plus a ridge on
//!   the two endpoint diagonals (per-edge service demand). The mixed
//!   question "load edges under spectral capacity while covering every
//!   vertex's ridge demand" is feasible at a positive threshold whenever
//!   the graph has no isolated vertex.

use psdp_core::MixedInstance;
use psdp_parallel::rng_for;
use psdp_sparse::{Csr, Graph, PsdMatrix};
use rand::Rng;

/// Random diagonal-embedded mixed LP: `n` coordinates, `mp` packing rows,
/// `mc` covering rows, entries drawn in `(0.1, 1.0]` at the given density
/// (deterministic in `seed`). Every coordinate is guaranteed a nonzero
/// column on *both* sides ([`MixedInstance`] requires positive traces).
///
/// # Panics
/// Panics on zero sizes or a density outside `[0, 1]`.
pub fn mixed_lp_diagonal(mp: usize, mc: usize, n: usize, density: f64, seed: u64) -> MixedInstance {
    assert!(mp > 0 && mc > 0 && n > 0);
    assert!((0.0..=1.0).contains(&density));
    fn column(rng: &mut rand::rngs::StdRng, rows: usize, density: f64) -> Vec<f64> {
        let mut d: Vec<f64> = (0..rows)
            .map(|_| if rng.gen_bool(density.max(1e-9)) { rng.gen_range(0.1..1.0) } else { 0.0 })
            .collect();
        if d.iter().all(|&v| v == 0.0) {
            let j = rng.gen_range(0..rows);
            d[j] = rng.gen_range(0.1..1.0);
        }
        d
    }
    let mut pack = Vec::with_capacity(n);
    let mut cover = Vec::with_capacity(n);
    for k in 0..n {
        let mut rng = rng_for(seed, 20_000 + k as u64);
        pack.push(PsdMatrix::Diagonal(column(&mut rng, mp, density)));
        cover.push(PsdMatrix::Diagonal(column(&mut rng, mc, density)));
    }
    MixedInstance::new(pack, cover).expect("generator emits valid mixed instances")
}

/// Graph-based mixed family: per edge `e = (u, v)` with weight `w`,
///
/// * packing matrix `Pₑ = Lₑ` (the edge Laplacian, sparse CSR — spectral
///   capacity, identical to [`crate::edge_packing_sparse`]),
/// * covering matrix `Cₑ = Lₑ + ridge·(e_u e_uᵀ + e_v e_vᵀ)` (sparse CSR —
///   the edge serves a ridge demand at both endpoints).
///
/// With `ridge > 0`, `Σₑ xₑCₑ ⪰ ridge·diag(weighted degrees)`, so the
/// coverage optimum is strictly positive exactly when the graph has no
/// isolated vertex (an isolated vertex is a common null direction of
/// every `Cₑ`, which [`psdp_core::solve_mixed`] detects and reports as
/// `σ* = 0`).
///
/// # Panics
/// Panics if the graph has no edges or `ridge` is not positive and finite.
pub fn mixed_edge_cover(g: &Graph, ridge: f64) -> MixedInstance {
    assert!(g.m() > 0, "mixed_edge_cover: graph has no edges");
    assert!(ridge > 0.0 && ridge.is_finite(), "ridge must be positive and finite");
    let n = g.n();
    let mut pack = Vec::with_capacity(g.m());
    let mut cover = Vec::with_capacity(g.m());
    for &(u, v, w) in g.edges() {
        let lap = [(u, u, w), (v, v, w), (u, v, -w), (v, u, -w)];
        pack.push(PsdMatrix::Sparse(Csr::from_triplets(n, n, &lap)));
        let cov = [(u, u, w + ridge), (v, v, w + ridge), (u, v, -w), (v, u, -w)];
        cover.push(PsdMatrix::Sparse(Csr::from_triplets(n, n, &cov)));
    }
    MixedInstance::new(pack, cover).expect("generator emits valid mixed instances")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagonal::diagonal_columns;
    use crate::graphs::{gnp, grid};
    use psdp_linalg::sym_eigen;

    #[test]
    fn mixed_lp_deterministic_and_nonzero_both_sides() {
        let a = mixed_lp_diagonal(4, 3, 5, 0.5, 7);
        let b = mixed_lp_diagonal(4, 3, 5, 0.5, 7);
        assert_eq!(a.n(), 5);
        assert_eq!(a.pack_dim(), 4);
        assert_eq!(a.cover_dim(), 3);
        for (x, y) in a.pack().mats().iter().zip(b.pack().mats()) {
            assert!(x.trace() > 0.0);
            assert_eq!(x.to_dense().as_slice(), y.to_dense().as_slice());
        }
        for (x, y) in a.cover().mats().iter().zip(b.cover().mats()) {
            assert!(x.trace() > 0.0);
            assert_eq!(x.to_dense().as_slice(), y.to_dense().as_slice());
        }
    }

    #[test]
    fn mixed_lp_zero_density_fallback() {
        let inst = mixed_lp_diagonal(3, 2, 4, 0.0, 1);
        for m in inst.pack().mats().iter().chain(inst.cover().mats()) {
            assert!(m.trace() > 0.0);
        }
    }

    #[test]
    fn mixed_lp_columns_extractable() {
        let inst = mixed_lp_diagonal(4, 3, 5, 0.6, 3);
        let pack_cols = diagonal_columns(inst.pack().mats());
        let cover_cols = diagonal_columns(inst.cover().mats());
        assert_eq!(pack_cols.len(), 5);
        assert_eq!(pack_cols[0].len(), 4);
        assert_eq!(cover_cols[0].len(), 3);
    }

    #[test]
    fn edge_cover_matrices_are_psd_and_sparse() {
        let g = grid(2, 3);
        let inst = mixed_edge_cover(&g, 0.5);
        assert_eq!(inst.n(), g.m());
        assert_eq!(inst.pack_dim(), g.n());
        for (p, c) in inst.pack().mats().iter().zip(inst.cover().mats()) {
            assert!(matches!(p, PsdMatrix::Sparse(_)));
            assert!(matches!(c, PsdMatrix::Sparse(_)));
            let pe = sym_eigen(&p.to_dense()).unwrap();
            assert!(pe.lambda_min() > -1e-12);
            let ce = sym_eigen(&c.to_dense()).unwrap();
            // Cₑ = Lₑ + ridge·diag: λmin over the edge's 2-dim support is
            // ridge; over the whole space it is 0 (untouched vertices).
            assert!(ce.lambda_min() > -1e-12);
            assert!((c.trace() - p.trace() - 1.0).abs() < 1e-12, "ridge adds 2·0.5 to the trace");
        }
    }

    #[test]
    fn edge_cover_aggregate_dominates_ridge_degrees() {
        // Σₑ Cₑ = 2L + ridge·diag(deg): with unit x the aggregate's λmin
        // is ≥ ridge·min_deg > 0 on a graph without isolated vertices.
        let g = gnp(8, 0.9, 3);
        let ridge = 0.25;
        let inst = mixed_edge_cover(&g, ridge);
        let ones = vec![1.0; inst.n()];
        let agg = inst.cover().weighted_sum(&ones);
        let min_deg = (0..g.n())
            .map(|u| g.edges().iter().filter(|&&(a, b, _)| a == u || b == u).count())
            .min()
            .unwrap();
        assert!(min_deg >= 1, "seed produced an isolated vertex");
        let lam = sym_eigen(&agg).unwrap().lambda_min();
        assert!(lam >= ridge * min_deg as f64 - 1e-9, "λmin {lam} vs ridge·deg");
    }

    #[test]
    #[should_panic(expected = "no edges")]
    fn edge_cover_rejects_empty_graph() {
        let g = Graph::new(3);
        let _ = mixed_edge_cover(&g, 0.5);
    }
}
