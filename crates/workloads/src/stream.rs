//! Serving request streams: zipf-repeated instance traffic for the
//! `psdp-serve` scheduler and the `serve_throughput` bench.
//!
//! Real serving traffic is heavy-tailed — a few popular instances receive
//! most of the requests (repeat dashboards, retried jobs, parameter
//! sweeps) while a long tail appears once. The generator models that with
//! a zipf law over a pool of distinct instances: request `t` draws
//! instance rank `k` with probability `∝ 1/(k+1)^s`. This is exactly the
//! shape a fingerprint-keyed cache should be measured on: amortization
//! wins on the head, the tail stays cold.

use crate::random::{random_factorized, RandomFactorized};
use psdp_core::PackingInstance;
use psdp_parallel::splitmix64;

/// Parameters of the zipf request stream (all deterministic in `seed`).
#[derive(Debug, Clone, Copy)]
pub struct RequestStreamSpec {
    /// Distinct instances in the pool.
    pub pool: usize,
    /// Total requests to emit.
    pub requests: usize,
    /// Matrix dimension of each pooled instance.
    pub dim: usize,
    /// Constraint count of each pooled instance.
    pub n: usize,
    /// Zipf exponent `s` (`0` = uniform; `~1` = classic heavy head).
    pub zipf_s: f64,
    /// Distinct decision thresholds cycled per instance. `1` makes
    /// repeats byte-identical (pure memoization traffic); larger values
    /// emit perturbed repeats that exercise prepared-state reuse and
    /// trajectory replay instead.
    pub thresholds: usize,
    /// Stream seed.
    pub seed: u64,
}

impl Default for RequestStreamSpec {
    fn default() -> Self {
        RequestStreamSpec {
            pool: 4,
            requests: 32,
            dim: 10,
            n: 6,
            zipf_s: 1.1,
            thresholds: 3,
            seed: 1,
        }
    }
}

/// One emitted request: which pooled instance to solve and at what
/// decision threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRequest {
    /// Unique, zero-padded id (`r000007`), sortable in emission order.
    pub id: String,
    /// Index into the returned instance pool.
    pub instance: usize,
    /// Decision threshold for this request.
    pub threshold: f64,
}

/// Generate the instance pool and the zipf-ordered request list.
///
/// Instance `k` of the pool is the shared random-factorized family at
/// seed `seed + k`; thresholds cycle through `thresholds` geometrically
/// spaced values per instance, keyed by that instance's request counter
/// (so the `j`-th request for an instance is identical across shuffles of
/// everything else).
///
/// # Panics
/// Panics on zero `pool`, `requests`, `dim`, or `n` (forwarded from the
/// instance generator), or a non-finite/negative `zipf_s`.
pub fn request_stream(spec: &RequestStreamSpec) -> (Vec<PackingInstance>, Vec<StreamRequest>) {
    assert!(spec.pool > 0 && spec.requests > 0, "pool and requests must be positive");
    assert!(
        spec.zipf_s.is_finite() && spec.zipf_s >= 0.0,
        "zipf exponent must be finite and non-negative"
    );
    let instances: Vec<PackingInstance> = (0..spec.pool)
        .map(|k| {
            PackingInstance::new(random_factorized(&RandomFactorized {
                dim: spec.dim,
                n: spec.n,
                rank: 2,
                nnz_per_col: (spec.dim / 3).max(2),
                width: 1.0,
                seed: spec.seed.wrapping_add(k as u64),
            }))
            .expect("random_factorized emits valid instances")
        })
        .collect();

    // Zipf CDF over ranks 0..pool.
    let weights: Vec<f64> =
        (0..spec.pool).map(|k| 1.0 / ((k + 1) as f64).powf(spec.zipf_s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(spec.pool);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }

    let thresholds = spec.thresholds.max(1);
    let mut per_instance_count = vec![0usize; spec.pool];
    let requests = (0..spec.requests)
        .map(|t| {
            // splitmix64 over the request index → u ∈ [0, 1).
            let bits =
                splitmix64(spec.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(t as u64));
            let u = (bits >> 11) as f64 / (1u64 << 53) as f64;
            let instance = cdf.iter().position(|&c| u < c).unwrap_or(spec.pool - 1);
            // Geometric threshold ladder around 1: repeats of one instance
            // cycle deterministically through it.
            let j = per_instance_count[instance] % thresholds;
            per_instance_count[instance] += 1;
            let threshold = 0.9 * 1.07f64.powi(j as i32);
            StreamRequest { id: format!("r{t:06}"), instance, threshold }
        })
        .collect();
    (instances, requests)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let spec = RequestStreamSpec::default();
        let (ia, ra) = request_stream(&spec);
        let (ib, rb) = request_stream(&spec);
        assert_eq!(ra, rb);
        assert_eq!(ia.len(), ib.len());
        for (a, b) in ia.iter().zip(&ib) {
            for (x, y) in a.mats().iter().zip(b.mats()) {
                assert_eq!(x.to_dense().as_slice(), y.to_dense().as_slice());
            }
        }
    }

    #[test]
    fn zipf_head_dominates() {
        let spec = RequestStreamSpec { pool: 5, requests: 200, zipf_s: 1.2, ..Default::default() };
        let (_, reqs) = request_stream(&spec);
        let mut counts = vec![0usize; spec.pool];
        for r in &reqs {
            counts[r.instance] += 1;
        }
        assert!(counts[0] > counts[4], "head rank must outdraw the tail: {counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 200);
    }

    #[test]
    fn ids_unique_and_thresholds_cycle() {
        let spec = RequestStreamSpec { thresholds: 3, requests: 40, ..Default::default() };
        let (_, reqs) = request_stream(&spec);
        let ids: std::collections::BTreeSet<_> = reqs.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids.len(), reqs.len());
        // Per instance, at most `thresholds` distinct thresholds.
        for k in 0..spec.pool {
            let distinct: std::collections::BTreeSet<u64> =
                reqs.iter().filter(|r| r.instance == k).map(|r| r.threshold.to_bits()).collect();
            assert!(distinct.len() <= 3, "instance {k} saw {} thresholds", distinct.len());
        }
    }

    #[test]
    fn single_threshold_mode_repeats_exactly() {
        let spec = RequestStreamSpec { thresholds: 1, requests: 20, ..Default::default() };
        let (_, reqs) = request_stream(&spec);
        let distinct: std::collections::BTreeSet<u64> =
            reqs.iter().map(|r| r.threshold.to_bits()).collect();
        assert_eq!(distinct.len(), 1);
    }
}
