//! Serving request streams: zipf-repeated instance traffic for the
//! `psdp-serve` scheduler and the `serve_throughput` bench.
//!
//! Real serving traffic is heavy-tailed — a few popular instances receive
//! most of the requests (repeat dashboards, retried jobs, parameter
//! sweeps) while a long tail appears once. The generator models that with
//! a zipf law over a pool of distinct instances: request `t` draws
//! instance rank `k` with probability `∝ 1/(k+1)^s`. This is exactly the
//! shape a fingerprint-keyed cache should be measured on: amortization
//! wins on the head, the tail stays cold.

use crate::mixed::mixed_lp_diagonal;
use crate::random::{random_factorized, RandomFactorized};
use psdp_core::{MixedInstance, PackingInstance};
use psdp_parallel::splitmix64;

/// Parameters of the zipf request stream (all deterministic in `seed`).
#[derive(Debug, Clone, Copy)]
pub struct RequestStreamSpec {
    /// Distinct instances in the pool.
    pub pool: usize,
    /// Total requests to emit.
    pub requests: usize,
    /// Matrix dimension of each pooled instance.
    pub dim: usize,
    /// Constraint count of each pooled instance.
    pub n: usize,
    /// Zipf exponent `s` (`0` = uniform; `~1` = classic heavy head).
    pub zipf_s: f64,
    /// Distinct decision thresholds cycled per instance. `1` makes
    /// repeats byte-identical (pure memoization traffic); larger values
    /// emit perturbed repeats that exercise prepared-state reuse and
    /// trajectory replay instead.
    pub thresholds: usize,
    /// Stream seed.
    pub seed: u64,
}

impl Default for RequestStreamSpec {
    fn default() -> Self {
        RequestStreamSpec {
            pool: 4,
            requests: 32,
            dim: 10,
            n: 6,
            zipf_s: 1.1,
            thresholds: 3,
            seed: 1,
        }
    }
}

/// One emitted request: which pooled instance to solve and at what
/// decision threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRequest {
    /// Unique, zero-padded id (`r000007`), sortable in emission order.
    pub id: String,
    /// Index into the returned instance pool.
    pub instance: usize,
    /// Decision threshold for this request.
    pub threshold: f64,
}

/// Generate the instance pool and the zipf-ordered request list.
///
/// Instance `k` of the pool is the shared random-factorized family at
/// seed `seed + k`; thresholds cycle through `thresholds` geometrically
/// spaced values per instance, keyed by that instance's request counter
/// (so the `j`-th request for an instance is identical across shuffles of
/// everything else).
///
/// # Panics
/// Panics on zero `pool`, `requests`, `dim`, or `n` (forwarded from the
/// instance generator), or a non-finite/negative `zipf_s`.
pub fn request_stream(spec: &RequestStreamSpec) -> (Vec<PackingInstance>, Vec<StreamRequest>) {
    assert!(spec.pool > 0 && spec.requests > 0, "pool and requests must be positive");
    assert!(
        spec.zipf_s.is_finite() && spec.zipf_s >= 0.0,
        "zipf exponent must be finite and non-negative"
    );
    let instances: Vec<PackingInstance> = (0..spec.pool)
        .map(|k| {
            PackingInstance::new(random_factorized(&RandomFactorized {
                dim: spec.dim,
                n: spec.n,
                rank: 2,
                nnz_per_col: (spec.dim / 3).max(2),
                width: 1.0,
                seed: spec.seed.wrapping_add(k as u64),
            }))
            .expect("random_factorized emits valid instances")
        })
        .collect();

    let cdf = zipf_cdf(spec.pool, spec.zipf_s);

    let thresholds = spec.thresholds.max(1);
    let mut per_instance_count = vec![0usize; spec.pool];
    let requests = (0..spec.requests)
        .map(|t| {
            // splitmix64 over the request index → u ∈ [0, 1).
            let bits =
                splitmix64(spec.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(t as u64));
            let u = (bits >> 11) as f64 / (1u64 << 53) as f64;
            let instance = cdf.iter().position(|&c| u < c).unwrap_or(spec.pool - 1);
            // Geometric threshold ladder around 1: repeats of one instance
            // cycle deterministically through it.
            let j = per_instance_count[instance] % thresholds;
            per_instance_count[instance] += 1;
            let threshold = 0.9 * 1.07f64.powi(j as i32);
            StreamRequest { id: format!("r{t:06}"), instance, threshold }
        })
        .collect();
    (instances, requests)
}

/// Zipf CDF over ranks `0..pool` with exponent `s`.
fn zipf_cdf(pool: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (0..pool).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(pool);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    cdf
}

/// Which serve command a [`KindedRequest`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// A decision request (`command: solve`) against the packing pool.
    Solve,
    /// A bisection request (`command: optimize`) against the packing pool.
    Optimize,
    /// A mixed packing–covering request against the mixed pool.
    Mixed,
}

/// Parameters of the full-protocol stream: the packing zipf stream of
/// [`RequestStreamSpec`] plus a share of optimize and mixed traffic. This
/// is the E15 service workload — scale `base.requests` to 100k–1M; cost
/// is linear in `requests` and instance construction is per *pool* entry.
#[derive(Debug, Clone, Copy)]
pub struct MixedStreamSpec {
    /// The underlying packing pool and zipf request schedule.
    pub base: RequestStreamSpec,
    /// Distinct mixed packing–covering instances in their own zipf pool
    /// (`0` disables mixed traffic regardless of `mixed_share`).
    pub mixed_pool: usize,
    /// Fraction of requests emitted as `optimize` instead of `solve`.
    pub optimize_share: f64,
    /// Fraction of requests routed to the mixed pool.
    pub mixed_share: f64,
    /// Accuracy passed on every emitted JSONL request.
    pub eps: f64,
}

impl Default for MixedStreamSpec {
    fn default() -> Self {
        MixedStreamSpec {
            base: RequestStreamSpec::default(),
            mixed_pool: 2,
            optimize_share: 0.15,
            mixed_share: 0.1,
            eps: 0.2,
        }
    }
}

/// One request of the full-protocol stream: a command kind plus an index
/// into the pool that kind draws from.
#[derive(Debug, Clone, PartialEq)]
pub struct KindedRequest {
    /// Unique, zero-padded id, sortable in emission order.
    pub id: String,
    /// Which serve command to emit.
    pub kind: StreamKind,
    /// Index into the packing pool ([`StreamKind::Solve`] /
    /// [`StreamKind::Optimize`]) or the mixed pool
    /// ([`StreamKind::Mixed`]).
    pub instance: usize,
    /// Decision threshold (meaningful for [`StreamKind::Solve`] only).
    pub threshold: f64,
}

/// The generated service workload: both instance pools plus the ordered
/// request list.
#[derive(Debug, Clone)]
pub struct StreamBatch {
    /// Packing pool (indexed by solve/optimize requests).
    pub packing: Vec<PackingInstance>,
    /// Mixed packing–covering pool (indexed by mixed requests).
    pub mixed: Vec<MixedInstance>,
    /// Requests in emission order.
    pub requests: Vec<KindedRequest>,
    /// Accuracy carried onto every emitted JSONL line.
    pub eps: f64,
}

/// Generate the full-protocol stream: the packing schedule of
/// [`request_stream`], with a deterministic share of requests rewritten
/// to `optimize` and a share rerouted to a zipf-ordered mixed pool.
///
/// # Panics
/// Forwards the panics of [`request_stream`]; additionally panics on
/// non-finite or out-of-range shares (`optimize_share + mixed_share`
/// must stay within `[0, 1]`).
pub fn mixed_request_stream(spec: &MixedStreamSpec) -> StreamBatch {
    assert!(
        spec.optimize_share.is_finite()
            && spec.mixed_share.is_finite()
            && spec.optimize_share >= 0.0
            && spec.mixed_share >= 0.0
            && spec.optimize_share + spec.mixed_share <= 1.0,
        "optimize/mixed shares must be finite, non-negative, and sum to at most 1"
    );
    let (packing, base_requests) = request_stream(&spec.base);
    let mixed: Vec<MixedInstance> = (0..spec.mixed_pool)
        .map(|k| {
            let n = spec.base.n.max(2);
            mixed_lp_diagonal(
                n,
                n.saturating_sub(1).max(2),
                spec.base.dim.max(2),
                0.6,
                spec.base.seed.wrapping_add(1000 + k as u64),
            )
        })
        .collect();
    let mixed_cdf = zipf_cdf(spec.mixed_pool, spec.base.zipf_s);
    let mixed_share = if spec.mixed_pool == 0 { 0.0 } else { spec.mixed_share };

    let mut mixed_count = 0u64;
    let requests = base_requests
        .into_iter()
        .enumerate()
        .map(|(t, r)| {
            // A second, independently-keyed splitmix64 stream decides the
            // command kind so the packing schedule stays untouched.
            let bits = splitmix64(
                spec.base.seed.wrapping_mul(0xD605_BBB5_8C8A_5E15).wrapping_add(t as u64),
            );
            let u = (bits >> 11) as f64 / (1u64 << 53) as f64;
            if u < mixed_share {
                // Zipf rank over the mixed pool, keyed by the running
                // mixed-request counter.
                let mb =
                    splitmix64(spec.base.seed.wrapping_add(0xA076_1D64_78BD_642F ^ mixed_count));
                mixed_count += 1;
                let mu = (mb >> 11) as f64 / (1u64 << 53) as f64;
                let instance =
                    mixed_cdf.iter().position(|&c| mu < c).unwrap_or(spec.mixed_pool - 1);
                KindedRequest { id: r.id, kind: StreamKind::Mixed, instance, threshold: 0.0 }
            } else if u < mixed_share + spec.optimize_share {
                KindedRequest {
                    id: r.id,
                    kind: StreamKind::Optimize,
                    instance: r.instance,
                    threshold: r.threshold,
                }
            } else {
                KindedRequest {
                    id: r.id,
                    kind: StreamKind::Solve,
                    instance: r.instance,
                    threshold: r.threshold,
                }
            }
        })
        .collect();
    StreamBatch { packing, mixed, requests, eps: spec.eps }
}

/// Split the service workload into `clients` independent per-client
/// streams with disjoint instance pools: client `c` regenerates the
/// batch at a seed offset of `c`, so no two clients share a fingerprint.
/// This is the multi-client determinism harness — each client's stream,
/// submitted over its own socket connection, must produce responses
/// bitwise identical to the same stream piped over stdin, and disjoint
/// pools keep per-request telemetry (cache hits, prepared-state reuse)
/// identical too, not just the response payloads.
///
/// # Panics
/// Panics on zero `clients`; forwards the panics of
/// [`mixed_request_stream`].
pub fn multi_client_streams(spec: &MixedStreamSpec, clients: usize) -> Vec<StreamBatch> {
    assert!(clients > 0, "clients must be positive");
    (0..clients)
        .map(|c| {
            let mut per_client = *spec;
            per_client.base.seed =
                spec.base.seed.wrapping_add((c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            mixed_request_stream(&per_client)
        })
        .collect()
}

/// Minimal JSON string escaper for canonical instance text (quotes,
/// backslashes, and control characters; everything else passes through).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a [`StreamBatch`] as the `psdp serve` JSONL protocol, one
/// request per line with inline canonical instance text. The bytes are a
/// pure function of the batch — the determinism suite and the
/// `serve_stream` bench feed the same string to every configuration they
/// compare.
pub fn stream_jsonl(batch: &StreamBatch) -> String {
    let pack_texts: Vec<String> =
        batch.packing.iter().map(|i| json_escape(&psdp_core::write_instance(i))).collect();
    let mixed_texts: Vec<String> =
        batch.mixed.iter().map(|i| json_escape(&psdp_core::write_mixed_instance(i))).collect();
    let mut out = String::new();
    for r in &batch.requests {
        match r.kind {
            StreamKind::Solve => out.push_str(&format!(
                "{{\"id\":\"{}\",\"command\":\"solve\",\"instance\":\"{}\",\"threshold\":{},\"eps\":{}}}\n",
                r.id, pack_texts[r.instance], r.threshold, batch.eps,
            )),
            StreamKind::Optimize => out.push_str(&format!(
                "{{\"id\":\"{}\",\"command\":\"optimize\",\"instance\":\"{}\",\"eps\":{}}}\n",
                r.id, pack_texts[r.instance], batch.eps,
            )),
            StreamKind::Mixed => out.push_str(&format!(
                "{{\"id\":\"{}\",\"command\":\"mixed\",\"instance\":\"{}\",\"eps\":{}}}\n",
                r.id, mixed_texts[r.instance], batch.eps,
            )),
        }
    }
    out
}

/// Render a [`StreamBatch`] as the `psdp serve --listen` binary-frame
/// protocol: every request becomes a `0x00`-marked, length-prefixed frame
/// carrying its JSON header and the instance as `psdp-bin-1` bytes
/// (encoded once per pool entry, not per request). Same request schedule
/// as [`stream_jsonl`], so the two encodings must produce byte-identical
/// response payloads — that is exactly the cross-check the determinism
/// suite runs — while the binary path skips text parsing entirely.
pub fn stream_frames(batch: &StreamBatch) -> Vec<u8> {
    let pack_bins: Vec<Vec<u8>> = batch.packing.iter().map(psdp_core::write_instance_bin).collect();
    let mixed_bins: Vec<Vec<u8>> =
        batch.mixed.iter().map(psdp_core::write_mixed_instance_bin).collect();
    let mut out: Vec<u8> = Vec::new();
    for r in &batch.requests {
        let (json, inst) = match r.kind {
            StreamKind::Solve => (
                format!(
                    "{{\"id\":\"{}\",\"command\":\"solve\",\"threshold\":{},\"eps\":{}}}",
                    r.id, r.threshold, batch.eps,
                ),
                &pack_bins[r.instance],
            ),
            StreamKind::Optimize => (
                format!("{{\"id\":\"{}\",\"command\":\"optimize\",\"eps\":{}}}", r.id, batch.eps,),
                &pack_bins[r.instance],
            ),
            StreamKind::Mixed => (
                format!("{{\"id\":\"{}\",\"command\":\"mixed\",\"eps\":{}}}", r.id, batch.eps),
                &mixed_bins[r.instance],
            ),
        };
        let payload_len = 4 + json.len() + inst.len();
        out.push(0x00);
        out.extend_from_slice(&u32::try_from(payload_len).unwrap_or(u32::MAX).to_le_bytes());
        out.extend_from_slice(&u32::try_from(json.len()).unwrap_or(u32::MAX).to_le_bytes());
        out.extend_from_slice(json.as_bytes());
        out.extend_from_slice(inst);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let spec = RequestStreamSpec::default();
        let (ia, ra) = request_stream(&spec);
        let (ib, rb) = request_stream(&spec);
        assert_eq!(ra, rb);
        assert_eq!(ia.len(), ib.len());
        for (a, b) in ia.iter().zip(&ib) {
            for (x, y) in a.mats().iter().zip(b.mats()) {
                assert_eq!(x.to_dense().as_slice(), y.to_dense().as_slice());
            }
        }
    }

    #[test]
    fn zipf_head_dominates() {
        let spec = RequestStreamSpec { pool: 5, requests: 200, zipf_s: 1.2, ..Default::default() };
        let (_, reqs) = request_stream(&spec);
        let mut counts = vec![0usize; spec.pool];
        for r in &reqs {
            counts[r.instance] += 1;
        }
        assert!(counts[0] > counts[4], "head rank must outdraw the tail: {counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 200);
    }

    #[test]
    fn ids_unique_and_thresholds_cycle() {
        let spec = RequestStreamSpec { thresholds: 3, requests: 40, ..Default::default() };
        let (_, reqs) = request_stream(&spec);
        let ids: std::collections::BTreeSet<_> = reqs.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids.len(), reqs.len());
        // Per instance, at most `thresholds` distinct thresholds.
        for k in 0..spec.pool {
            let distinct: std::collections::BTreeSet<u64> =
                reqs.iter().filter(|r| r.instance == k).map(|r| r.threshold.to_bits()).collect();
            assert!(distinct.len() <= 3, "instance {k} saw {} thresholds", distinct.len());
        }
    }

    #[test]
    fn single_threshold_mode_repeats_exactly() {
        let spec = RequestStreamSpec { thresholds: 1, requests: 20, ..Default::default() };
        let (_, reqs) = request_stream(&spec);
        let distinct: std::collections::BTreeSet<u64> =
            reqs.iter().map(|r| r.threshold.to_bits()).collect();
        assert_eq!(distinct.len(), 1);
    }

    #[test]
    fn mixed_stream_emits_all_kinds_deterministically() {
        let spec = MixedStreamSpec {
            base: RequestStreamSpec { requests: 300, ..Default::default() },
            ..Default::default()
        };
        let a = mixed_request_stream(&spec);
        let b = mixed_request_stream(&spec);
        assert_eq!(a.requests, b.requests);
        assert_eq!(stream_jsonl(&a), stream_jsonl(&b));
        let count = |k: StreamKind| a.requests.iter().filter(|r| r.kind == k).count();
        let (s, o, m) =
            (count(StreamKind::Solve), count(StreamKind::Optimize), count(StreamKind::Mixed));
        assert_eq!(s + o + m, 300);
        assert!(s > o && o > 0 && m > 0, "kind mix: solve={s} optimize={o} mixed={m}");
        for r in &a.requests {
            let pool = if r.kind == StreamKind::Mixed { a.mixed.len() } else { a.packing.len() };
            assert!(r.instance < pool, "{r:?} out of pool");
        }
    }

    #[test]
    fn zero_mixed_pool_disables_mixed_traffic() {
        let spec = MixedStreamSpec {
            mixed_pool: 0,
            mixed_share: 0.5,
            base: RequestStreamSpec { requests: 100, ..Default::default() },
            ..Default::default()
        };
        let batch = mixed_request_stream(&spec);
        assert!(batch.requests.iter().all(|r| r.kind != StreamKind::Mixed));
        assert!(batch.mixed.is_empty());
    }

    #[test]
    fn jsonl_lines_match_requests_and_escape_newlines() {
        let batch = mixed_request_stream(&MixedStreamSpec {
            base: RequestStreamSpec { requests: 40, ..Default::default() },
            ..Default::default()
        });
        let text = stream_jsonl(&batch);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), batch.requests.len());
        for (line, r) in lines.iter().zip(&batch.requests) {
            assert!(line.starts_with(&format!("{{\"id\":\"{}\",\"command\":", r.id)), "{line}");
            assert!(!line.contains('\n'));
            assert!(line.contains("\\n"), "instance text must be inline-escaped: {line}");
        }
    }

    #[test]
    fn frame_stream_matches_request_schedule() {
        let batch = mixed_request_stream(&MixedStreamSpec {
            base: RequestStreamSpec { requests: 40, ..Default::default() },
            ..Default::default()
        });
        let bytes = stream_frames(&batch);
        assert_eq!(bytes, stream_frames(&batch), "frame bytes must be deterministic");
        // Walk the frames: one per request, each payload holding the JSON
        // header (with the right id) followed by psdp-bin-1 magic.
        let mut pos = 0usize;
        for r in &batch.requests {
            assert_eq!(bytes[pos], 0x00, "frame marker at {pos}");
            let len = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().unwrap()) as usize;
            let payload = &bytes[pos + 5..pos + 5 + len];
            let json_len = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
            let json = std::str::from_utf8(&payload[4..4 + json_len]).unwrap();
            assert!(json.starts_with(&format!("{{\"id\":\"{}\",\"command\":", r.id)), "{json}");
            assert_eq!(&payload[4 + json_len..4 + json_len + 8], b"PSDPBIN1");
            pos += 5 + len;
        }
        assert_eq!(pos, bytes.len(), "no trailing bytes after the last frame");
    }

    #[test]
    fn multi_client_streams_are_disjoint_and_deterministic() {
        let spec = MixedStreamSpec {
            base: RequestStreamSpec { requests: 30, ..Default::default() },
            ..Default::default()
        };
        let a = multi_client_streams(&spec, 3);
        let b = multi_client_streams(&spec, 3);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(stream_jsonl(x), stream_jsonl(y), "per-client streams must be stable");
        }
        // Client 0 is the base stream verbatim.
        assert_eq!(stream_jsonl(&a[0]), stream_jsonl(&mixed_request_stream(&spec)));
        // Disjoint pools: no canonical instance text shared between clients.
        let texts = |batch: &StreamBatch| -> std::collections::BTreeSet<String> {
            batch
                .packing
                .iter()
                .map(psdp_core::write_instance)
                .chain(batch.mixed.iter().map(psdp_core::write_mixed_instance))
                .collect()
        };
        for i in 0..a.len() {
            for j in i + 1..a.len() {
                assert!(
                    texts(&a[i]).is_disjoint(&texts(&a[j])),
                    "clients {i} and {j} share an instance"
                );
            }
        }
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd\te\u{1}"), "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn stream_scales_to_e15_sizes() {
        // 100k requests over a small pool: generation is linear in the
        // request count and must stay cheap (instances are per pool).
        let spec = MixedStreamSpec {
            base: RequestStreamSpec { requests: 100_000, pool: 8, ..Default::default() },
            ..Default::default()
        };
        let batch = mixed_request_stream(&spec);
        assert_eq!(batch.requests.len(), 100_000);
        let ids: std::collections::BTreeSet<&str> =
            batch.requests.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids.len(), 100_000, "ids must be unique at scale");
    }
}
