//! Synthetic downlink-beamforming covering SDPs.
//!
//! The paper's conclusion singles out the beamforming SDP relaxation of
//! Iyengar–Phillips–Stein (SWAT 2010, §2.2) as the application that falls
//! *completely* within its packing/covering framework. The real instances
//! use measured antenna-array channels, which are not available; following
//! standard practice in that literature we synthesize i.i.d. Gaussian
//! channels (Rayleigh fading). Each user `i` contributes a covering
//! constraint
//!
//! ```text
//!   (hᵢhᵢᵀ) • Y ≥ γᵢ·σ²    (required SINR · noise power)
//! ```
//!
//! with objective `min Tr Y` (total transmit power, `C = I`), i.e. exactly
//! the primal form (1.1) with rank-2 real constraint matrices (a complex
//! channel `h ∈ ℂᵐ` embeds as two real columns). What matters to the solver
//! is preserved: low-rank factorized PSD constraints with heterogeneous
//! norms (users at different distances ⇒ nontrivial width).

use psdp_core::PositiveSdp;
use psdp_expdot::standard_normals;
use psdp_parallel::rng_for;
use psdp_sparse::{Csr, FactorPsd, PsdMatrix};

/// Parameters of the synthetic beamforming instance.
#[derive(Debug, Clone, Copy)]
pub struct Beamforming {
    /// Number of antennas (matrix dimension `m = 2·antennas` after the
    /// real embedding).
    pub antennas: usize,
    /// Number of users (constraints `n`).
    pub users: usize,
    /// SINR target (uniform across users).
    pub sinr_target: f64,
    /// Noise power `σ²`.
    pub noise: f64,
    /// Near–far spread: user `i`'s channel is scaled by
    /// `spread^(i/(users−1))`, so `spread` controls constraint-norm
    /// heterogeneity (≈ width).
    pub spread: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Beamforming {
    fn default() -> Self {
        Beamforming { antennas: 8, users: 6, sinr_target: 1.0, noise: 1.0, spread: 4.0, seed: 7 }
    }
}

/// Generate the covering SDP.
pub fn beamforming_sdp(p: &Beamforming) -> PositiveSdp {
    assert!(p.antennas > 0 && p.users > 0);
    assert!(p.sinr_target > 0.0 && p.noise > 0.0 && p.spread >= 1.0);
    let m = 2 * p.antennas;
    let mut constraints = Vec::with_capacity(p.users);
    let mut rhs = Vec::with_capacity(p.users);
    for i in 0..p.users {
        let mut rng = rng_for(p.seed, i as u64);
        // Complex Gaussian channel h = hr + i·hi, embedded as the two real
        // columns [hr; hi] and [-hi; hr] (so hhᴴ becomes a rank-2 real PSD).
        let hr = standard_normals(&mut rng, p.antennas);
        let hi = standard_normals(&mut rng, p.antennas);
        let gain =
            if p.users > 1 { p.spread.powf(-(i as f64) / (p.users as f64 - 1.0)) } else { 1.0 };
        let mut trip = Vec::with_capacity(2 * m);
        for (j, (&a, &b)) in hr.iter().zip(&hi).enumerate() {
            trip.push((j, 0, gain * a));
            trip.push((p.antennas + j, 0, gain * b));
            trip.push((j, 1, -gain * b));
            trip.push((p.antennas + j, 1, gain * a));
        }
        let f = FactorPsd::new(Csr::from_triplets(m, 2, &trip));
        constraints.push(PsdMatrix::Factor(f));
        rhs.push(p.sinr_target * p.noise);
    }
    PositiveSdp { objective: PsdMatrix::Diagonal(vec![1.0; m]), constraints, rhs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_linalg::sym_eigen;

    #[test]
    fn instance_shape() {
        let p = Beamforming::default();
        let sdp = beamforming_sdp(&p);
        assert_eq!(sdp.dim(), 16);
        assert_eq!(sdp.num_constraints(), 6);
        sdp.validate().unwrap();
    }

    #[test]
    fn constraints_rank_two_psd() {
        let sdp = beamforming_sdp(&Beamforming::default());
        for a in &sdp.constraints {
            let eig = sym_eigen(&a.to_dense()).unwrap();
            assert!(eig.lambda_min() > -1e-9);
            // Rank 2: third-largest eigenvalue ≈ 0.
            let k = eig.values.len();
            assert!(eig.values[k - 3] < 1e-9 * eig.lambda_max().max(1.0));
            // Complex embedding gives a doubled eigenvalue pair.
            assert!(
                (eig.values[k - 1] - eig.values[k - 2]).abs() < 1e-6 * eig.lambda_max().max(1e-12),
                "expected paired eigenvalues"
            );
        }
    }

    #[test]
    fn near_far_spread_creates_width() {
        let p = Beamforming { spread: 16.0, users: 4, ..Default::default() };
        let sdp = beamforming_sdp(&p);
        let lams: Vec<f64> = sdp
            .constraints
            .iter()
            .map(|a| sym_eigen(&a.to_dense()).unwrap().lambda_max())
            .collect();
        let hi = lams.iter().fold(0.0_f64, |a, &b| a.max(b));
        let lo = lams.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(hi / lo > 10.0, "spread ratio {}", hi / lo);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = beamforming_sdp(&Beamforming::default());
        let b = beamforming_sdp(&Beamforming::default());
        assert_eq!(a.constraints[0].to_dense().as_slice(), b.constraints[0].to_dense().as_slice());
    }
}
