//! Simultaneously diagonalizable ("commuting") constraint families.
//!
//! When all `Aᵢ = U diag(λᵢ) Uᵀ` share an eigenbasis `U`, the packing SDP is
//! a positive LP over the eigenvalues — so its exact optimum is computable
//! by simplex, while the instance still *looks* like a general dense SDP to
//! the solver. This is the ground-truth family for the approximation-quality
//! experiment (E8).

use psdp_linalg::{matmul, orthonormalize, Mat};
use psdp_parallel::rng_for;
use psdp_sparse::PsdMatrix;
use rand::Rng;

/// A commuting family plus the data needed to compute its exact optimum.
#[derive(Debug, Clone)]
pub struct CommutingFamily {
    /// The constraints as dense matrices (sharing the basis `u`).
    pub mats: Vec<PsdMatrix>,
    /// The common orthonormal eigenbasis.
    pub u: Mat,
    /// Per-constraint eigenvalues (`spectra[i][j]` pairs with column `j`
    /// of `u`).
    pub spectra: Vec<Vec<f64>>,
}

/// Generate a commuting family of `n` constraints in dimension `m` with
/// eigenvalues drawn from `(0.05, 1.0)` (some zeroed at the given rate to
/// create low-rank structure).
pub fn commuting_family(m: usize, n: usize, zero_rate: f64, seed: u64) -> CommutingFamily {
    assert!(m > 0 && n > 0);
    assert!((0.0..1.0).contains(&zero_rate));
    // Random orthonormal basis from QR of a random matrix.
    let mut rng = rng_for(seed, 0);
    let g = Mat::from_fn(m, m, |_, _| rng.gen_range(-1.0_f64..1.0));
    let u = orthonormalize(&g);

    let mut mats = Vec::with_capacity(n);
    let mut spectra = Vec::with_capacity(n);
    for i in 0..n {
        let mut crng = rng_for(seed, 1 + i as u64);
        let mut lams: Vec<f64> =
            (0..m)
                .map(|_| {
                    if crng.gen_bool(zero_rate.max(1e-12)) {
                        0.0
                    } else {
                        crng.gen_range(0.05..1.0)
                    }
                })
                .collect();
        if lams.iter().all(|&v| v == 0.0) {
            lams[0] = crng.gen_range(0.05..1.0);
        }
        let d = Mat::from_diag(&lams);
        let mut a = matmul(&matmul(&u, &d), &u.transpose());
        a.symmetrize();
        mats.push(PsdMatrix::Dense(a));
        spectra.push(lams);
    }
    CommutingFamily { mats, u, spectra }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_linalg::sym_eigen;

    #[test]
    fn family_members_commute() {
        let fam = commuting_family(5, 3, 0.2, 11);
        for i in 0..3 {
            for j in (i + 1)..3 {
                let a = fam.mats[i].to_dense();
                let b = fam.mats[j].to_dense();
                let ab = matmul(&a, &b);
                let ba = matmul(&b, &a);
                let diff = ab.sub(&ba);
                assert!(
                    diff.max_abs() < 1e-9,
                    "constraints {i},{j} do not commute: {}",
                    diff.max_abs()
                );
            }
        }
    }

    #[test]
    fn spectra_match_eigenvalues() {
        let fam = commuting_family(4, 2, 0.0, 5);
        for (a, lams) in fam.mats.iter().zip(&fam.spectra) {
            let mut want = lams.clone();
            want.sort_by(f64::total_cmp);
            let got = sym_eigen(&a.to_dense()).unwrap().values;
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn basis_is_orthonormal() {
        let fam = commuting_family(6, 2, 0.3, 9);
        let utu = matmul(&fam.u.transpose(), &fam.u);
        for i in 0..6 {
            for j in 0..6 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((utu[(i, j)] - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = commuting_family(4, 2, 0.2, 3);
        let b = commuting_family(4, 2, 0.2, 3);
        assert_eq!(a.mats[1].to_dense().as_slice(), b.mats[1].to_dense().as_slice());
    }
}
