//! Graph-derived packing instances.
//!
//! Edge Laplacians `w·(e_u−e_v)(e_u−e_v)ᵀ` are the canonical rank-1
//! factorized PSD constraints: the packing SDP `max 1ᵀx` s.t.
//! `Σ_e x_e L_e ⪯ I` asks how much each edge can be "loaded" before the
//! graph's spectral capacity saturates (a fractional spectral orientation /
//! reweighting question). These instances drive the sparse, large-`n`
//! experiments: `q = 2·|E|` grows linearly while `m = |V|` stays moderate.

use psdp_parallel::rng_for;
use psdp_sparse::{Csr, Graph, PsdMatrix};
use rand::Rng;

/// Erdős–Rényi `G(n, p)` with unit weights; isolated vertices allowed,
/// parallel edges not.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!(n >= 2);
    assert!((0.0..=1.0).contains(&p));
    let mut rng = rng_for(seed, 0);
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v, 1.0);
            }
        }
    }
    g
}

/// 2-D grid graph of `rows × cols` vertices with unit weights.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2);
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1), 1.0);
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c), 1.0);
            }
        }
    }
    g
}

/// Edge-Laplacian packing instance of a graph: one rank-1 factorized
/// constraint per edge, emitted natively (never densified) — `q = 2|E|`
/// total storage nonzeros. Returns an empty vector if the graph has no
/// edges.
pub fn edge_packing(g: &Graph) -> Vec<PsdMatrix> {
    g.edge_laplacians().into_iter().map(PsdMatrix::Factor).collect()
}

/// The same edge Laplacians as [`edge_packing`], but stored as explicit
/// sparse CSR matrices (4 nonzeros per edge) instead of rank-1 factors.
/// Semantically identical constraints in a different storage format —
/// the storage-equivalence tests and the incremental-Ψ bench compare the
/// two paths on these.
pub fn edge_packing_sparse(g: &Graph) -> Vec<PsdMatrix> {
    g.edges()
        .iter()
        .map(|&(u, v, w)| {
            let trip = [(u, u, w), (v, v, w), (u, v, -w), (v, u, -w)];
            PsdMatrix::Sparse(Csr::from_triplets(g.n(), g.n(), &trip))
        })
        .collect()
}

/// Per-vertex star-Laplacian packing: one sparse CSR constraint per vertex
/// of positive degree, `L_u = Σ_{uv ∈ E} w·(e_u−e_v)(e_u−e_v)ᵀ`. These are
/// the canonical sparse-but-not-rank-1 constraints (rank = deg(u)): the
/// packing SDP asks how much load each vertex neighborhood can carry before
/// the graph's spectral capacity saturates. Vertices of degree 0 get no
/// constraint.
pub fn vertex_star_packing(g: &Graph) -> Vec<PsdMatrix> {
    let n = g.n();
    let mut trips: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); n];
    for &(u, v, w) in g.edges() {
        trips[u].extend_from_slice(&[(u, u, w), (v, v, w), (u, v, -w), (v, u, -w)]);
        trips[v].extend_from_slice(&[(u, u, w), (v, v, w), (u, v, -w), (v, u, -w)]);
    }
    trips
        .into_iter()
        .filter(|t| !t.is_empty())
        .map(|t| PsdMatrix::Sparse(Csr::from_triplets(n, n, &t)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_linalg::sym_eigen;

    #[test]
    fn gnp_deterministic_and_simple() {
        let a = gnp(10, 0.4, 3);
        let b = gnp(10, 0.4, 3);
        assert_eq!(a.m(), b.m());
        // No parallel edges: each unordered pair appears at most once.
        let mut seen = std::collections::HashSet::new();
        for &(u, v, _) in a.edges() {
            assert!(seen.insert((u, v)), "duplicate edge ({u},{v})");
        }
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(6, 0.0, 1).m(), 0);
        assert_eq!(gnp(6, 1.0, 1).m(), 15);
    }

    #[test]
    fn grid_edge_count() {
        // rows*(cols-1) + (rows-1)*cols edges.
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4);
    }

    #[test]
    fn edge_packing_constraints_are_rank1_psd() {
        let g = grid(2, 3);
        let mats = edge_packing(&g);
        assert_eq!(mats.len(), g.m());
        for a in &mats {
            let eig = sym_eigen(&a.to_dense()).unwrap();
            assert!(eig.lambda_min() > -1e-12);
            // Rank 1 with eigenvalue 2w (‖e_u − e_v‖² = 2).
            assert!((eig.lambda_max() - 2.0).abs() < 1e-9);
            let k = eig.values.len();
            assert!(eig.values[k - 2].abs() < 1e-10);
        }
    }

    #[test]
    fn edge_packing_total_nnz_is_2m() {
        let g = grid(3, 3);
        let mats = edge_packing(&g);
        let q: usize = mats.iter().map(|a| a.storage_nnz()).sum();
        assert_eq!(q, 2 * g.m());
    }

    #[test]
    fn sparse_edge_packing_matches_factorized() {
        let g = grid(2, 3);
        let fac = edge_packing(&g);
        let spa = edge_packing_sparse(&g);
        assert_eq!(fac.len(), spa.len());
        for (f, s) in fac.iter().zip(&spa) {
            assert!(matches!(s, PsdMatrix::Sparse(_)));
            let fd = f.to_dense();
            let sd = s.to_dense();
            for i in 0..g.n() {
                for j in 0..g.n() {
                    assert!((fd[(i, j)] - sd[(i, j)]).abs() < 1e-12, "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn vertex_stars_are_sparse_psd_and_sum_to_twice_laplacian() {
        let g = grid(2, 3);
        let stars = vertex_star_packing(&g);
        assert_eq!(stars.len(), g.n(), "grid has no isolated vertices");
        let mut sum = psdp_linalg::Mat::zeros(g.n(), g.n());
        for s in &stars {
            assert!(matches!(s, PsdMatrix::Sparse(_)));
            assert!(s.validate_cheap().is_ok());
            let eig = sym_eigen(&s.to_dense()).unwrap();
            assert!(eig.lambda_min() > -1e-12);
            s.add_scaled_into(&mut sum, 1.0);
        }
        // Each edge Laplacian appears in exactly two stars, so the stars
        // sum to 2L.
        let lap = g.laplacian().to_dense();
        for i in 0..g.n() {
            for j in 0..g.n() {
                assert!((sum[(i, j)] - 2.0 * lap[(i, j)]).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn isolated_vertices_get_no_star() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        let stars = vertex_star_packing(&g);
        assert_eq!(stars.len(), 2);
    }
}
