//! Graph-derived packing instances.
//!
//! Edge Laplacians `w·(e_u−e_v)(e_u−e_v)ᵀ` are the canonical rank-1
//! factorized PSD constraints: the packing SDP `max 1ᵀx` s.t.
//! `Σ_e x_e L_e ⪯ I` asks how much each edge can be "loaded" before the
//! graph's spectral capacity saturates (a fractional spectral orientation /
//! reweighting question). These instances drive the sparse, large-`n`
//! experiments: `q = 2·|E|` grows linearly while `m = |V|` stays moderate.

use psdp_parallel::rng_for;
use psdp_sparse::{Graph, PsdMatrix};
use rand::Rng;

/// Erdős–Rényi `G(n, p)` with unit weights; isolated vertices allowed,
/// parallel edges not.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!(n >= 2);
    assert!((0.0..=1.0).contains(&p));
    let mut rng = rng_for(seed, 0);
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v, 1.0);
            }
        }
    }
    g
}

/// 2-D grid graph of `rows × cols` vertices with unit weights.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2);
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1), 1.0);
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c), 1.0);
            }
        }
    }
    g
}

/// Edge-Laplacian packing instance of a graph: one rank-1 factorized
/// constraint per edge. Returns an empty vector if the graph has no edges.
pub fn edge_packing(g: &Graph) -> Vec<PsdMatrix> {
    g.edge_laplacians().into_iter().map(PsdMatrix::Factor).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_linalg::sym_eigen;

    #[test]
    fn gnp_deterministic_and_simple() {
        let a = gnp(10, 0.4, 3);
        let b = gnp(10, 0.4, 3);
        assert_eq!(a.m(), b.m());
        // No parallel edges: each unordered pair appears at most once.
        let mut seen = std::collections::HashSet::new();
        for &(u, v, _) in a.edges() {
            assert!(seen.insert((u, v)), "duplicate edge ({u},{v})");
        }
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(6, 0.0, 1).m(), 0);
        assert_eq!(gnp(6, 1.0, 1).m(), 15);
    }

    #[test]
    fn grid_edge_count() {
        // rows*(cols-1) + (rows-1)*cols edges.
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4);
    }

    #[test]
    fn edge_packing_constraints_are_rank1_psd() {
        let g = grid(2, 3);
        let mats = edge_packing(&g);
        assert_eq!(mats.len(), g.m());
        for a in &mats {
            let eig = sym_eigen(&a.to_dense()).unwrap();
            assert!(eig.lambda_min() > -1e-12);
            // Rank 1 with eigenvalue 2w (‖e_u − e_v‖² = 2).
            assert!((eig.lambda_max() - 2.0).abs() < 1e-9);
            let k = eig.values.len();
            assert!(eig.values[k - 2].abs() < 1e-10);
        }
    }

    #[test]
    fn edge_packing_total_nnz_is_2m() {
        let g = grid(3, 3);
        let mats = edge_packing(&g);
        let q: usize = mats.iter().map(|a| a.storage_nnz()).sum();
        assert_eq!(q, 2 * g.m());
    }
}
