//! 2-D ellipse packing instances — Figure 1 of the paper.
//!
//! The paper's geometric intuition: a 2×2 PSD matrix `A` is the ellipse
//! `{z : zᵀAz ≤ 1}`, and the packing constraint `Σ xᵢAᵢ ⪯ I` asks how much
//! total "ellipse mass" fits in the unit ball. Axis-aligned ellipses
//! (diagonal matrices) are exactly positive LPs; the rotated ellipse `A₃` in
//! Figure 1 is what forces the matrix machinery.

use psdp_linalg::Mat;
use psdp_sparse::PsdMatrix;

/// A 2-D ellipse given by semi-axis lengths and a rotation angle: the PSD
/// matrix `Rᵀ diag(1/a², 1/b²) R` (so the ellipse `zᵀAz ≤ 1` has semi-axes
/// `a`, `b` rotated by `theta`).
#[derive(Debug, Clone, Copy)]
pub struct Ellipse {
    /// First semi-axis length.
    pub a: f64,
    /// Second semi-axis length.
    pub b: f64,
    /// Rotation angle in radians (0 = axis-aligned).
    pub theta: f64,
}

impl Ellipse {
    /// The PSD matrix of this ellipse.
    pub fn matrix(&self) -> Mat {
        assert!(self.a > 0.0 && self.b > 0.0, "semi-axes must be positive");
        let (c, s) = (self.theta.cos(), self.theta.sin());
        let (da, db) = (1.0 / (self.a * self.a), 1.0 / (self.b * self.b));
        // R^T D R with R = [[c, s], [-s, c]].
        let m00 = c * c * da + s * s * db;
        let m11 = s * s * da + c * c * db;
        let m01 = c * s * (da - db);
        Mat::from_rows(&[&[m00, m01], &[m01, m11]])
    }

    /// As a [`PsdMatrix`] constraint (dense; diagonal when axis-aligned).
    pub fn constraint(&self) -> PsdMatrix {
        if self.theta == 0.0 || (self.theta.sin()).abs() < 1e-15 {
            let m = self.matrix();
            PsdMatrix::Diagonal(vec![m[(0, 0)], m[(1, 1)]])
        } else {
            PsdMatrix::Dense(self.matrix())
        }
    }
}

/// The three-ellipse instance sketched in Figure 1: two axis-aligned
/// ellipses `A₁`, `A₂` (whose sum stays axis-aligned) plus a rotated `A₃`
/// that breaks the LP structure.
pub fn figure1_instance() -> Vec<PsdMatrix> {
    let a1 = Ellipse { a: 2.0, b: 0.8, theta: 0.0 };
    let a2 = Ellipse { a: 0.8, b: 2.0, theta: 0.0 };
    let a3 = Ellipse { a: 1.6, b: 0.7, theta: std::f64::consts::FRAC_PI_4 };
    vec![a1.constraint(), a2.constraint(), a3.constraint()]
}

/// A family of `n` unit-area-ish ellipses at evenly spread rotations, for
/// scaling the 2-D experiments.
pub fn rotated_family(n: usize, aspect: f64) -> Vec<PsdMatrix> {
    assert!(n > 0 && aspect >= 1.0);
    (0..n)
        .map(|k| {
            let theta = std::f64::consts::PI * k as f64 / n as f64;
            Ellipse { a: aspect.sqrt(), b: 1.0 / aspect.sqrt(), theta }.constraint()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_linalg::sym_eigen;

    #[test]
    fn ellipse_matrix_eigenvalues_are_inverse_square_axes() {
        let e = Ellipse { a: 2.0, b: 0.5, theta: 0.7 };
        let eig = sym_eigen(&e.matrix()).unwrap();
        // Eigenvalues 1/a² = 0.25 and 1/b² = 4, in ascending order.
        assert!((eig.values[0] - 0.25).abs() < 1e-12);
        assert!((eig.values[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn axis_aligned_becomes_diagonal() {
        let e = Ellipse { a: 1.0, b: 2.0, theta: 0.0 };
        assert!(matches!(e.constraint(), PsdMatrix::Diagonal(_)));
        let e = Ellipse { a: 1.0, b: 2.0, theta: 0.3 };
        assert!(matches!(e.constraint(), PsdMatrix::Dense(_)));
    }

    #[test]
    fn rotation_preserves_spectrum() {
        let e0 = Ellipse { a: 1.5, b: 0.6, theta: 0.0 };
        let e1 = Ellipse { a: 1.5, b: 0.6, theta: 1.1 };
        let s0 = sym_eigen(&e0.matrix()).unwrap().values;
        let s1 = sym_eigen(&e1.matrix()).unwrap().values;
        for (a, b) in s0.iter().zip(&s1) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn figure1_mixes_diagonal_and_dense() {
        let mats = figure1_instance();
        assert_eq!(mats.len(), 3);
        assert!(matches!(mats[0], PsdMatrix::Diagonal(_)));
        assert!(matches!(mats[1], PsdMatrix::Diagonal(_)));
        assert!(matches!(mats[2], PsdMatrix::Dense(_)));
        for m in &mats {
            assert!(sym_eigen(&m.to_dense()).unwrap().lambda_min() > 0.0);
        }
    }

    #[test]
    fn rotated_family_shapes() {
        let fam = rotated_family(5, 4.0);
        assert_eq!(fam.len(), 5);
        for m in &fam {
            let eig = sym_eigen(&m.to_dense()).unwrap();
            assert!((eig.values[0] - 0.25).abs() < 1e-9);
            assert!((eig.values[1] - 4.0).abs() < 1e-9);
        }
    }
}
