//! Random factorized packing instances with a controllable **width knob**.
//!
//! The width of a packing instance (for the best-response oracle) is
//! `ρ = maxᵢ λmax(Aᵢ)` after normalizing the decision threshold. These
//! generators produce low-rank factorized constraints (`Aᵢ = QᵢQᵢᵀ`, the
//! Theorem 4.1 input format) whose width can be dialed up by inflating a
//! few constraints — the E3 experiment's x-axis.

use psdp_linalg::Mat;
use psdp_parallel::rng_for;
use psdp_sparse::{Csr, FactorPsd, PsdMatrix};
use rand::Rng;

/// Parameters for the random factorized generator.
#[derive(Debug, Clone, Copy)]
pub struct RandomFactorized {
    /// Matrix dimension `m`.
    pub dim: usize,
    /// Number of constraints `n`.
    pub n: usize,
    /// Rank of each factor (columns of `Qᵢ`).
    pub rank: usize,
    /// Nonzeros per factor column (sparsity; clamped to `dim`).
    pub nnz_per_col: usize,
    /// Width knob: the first constraint is scaled so its `λmax` is `width ×`
    /// the typical one (1.0 = homogeneous instance).
    pub width: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomFactorized {
    fn default() -> Self {
        RandomFactorized { dim: 16, n: 8, rank: 2, nnz_per_col: 4, width: 1.0, seed: 1 }
    }
}

/// Generate the instance described by the parameters.
///
/// Constraints are normalized so the *typical* `λmax` is Θ(1); the first
/// constraint is then inflated by `width`.
pub fn random_factorized(p: &RandomFactorized) -> Vec<PsdMatrix> {
    assert!(p.dim > 0 && p.n > 0 && p.rank > 0);
    assert!(p.width >= 1.0, "width knob must be ≥ 1");
    let nnz_col = p.nnz_per_col.clamp(1, p.dim);
    let mut mats = Vec::with_capacity(p.n);
    for i in 0..p.n {
        let mut rng = rng_for(p.seed, i as u64);
        let mut trip = Vec::with_capacity(p.rank * nnz_col);
        for c in 0..p.rank {
            // Choose nnz_col distinct-ish rows.
            for _ in 0..nnz_col {
                let r = rng.gen_range(0..p.dim);
                let v: f64 = rng.gen_range(0.2..1.0) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                trip.push((r, c, v));
            }
        }
        let mut f = FactorPsd::new(Csr::from_triplets(p.dim, p.rank, &trip));
        // Normalize λmax to ~1, then apply the width knob to constraint 0.
        let lam = PsdMatrix::Factor(f.clone()).lambda_max_est().max(1e-12);
        let target = if i == 0 { p.width } else { 1.0 };
        f.scale(target / lam);
        mats.push(PsdMatrix::Factor(f));
    }
    mats
}

/// Dense random PSD constraints (for exercising the dense code path):
/// `Aᵢ = GᵢGᵢᵀ/dim` with standard-normal-ish `Gᵢ` entries.
pub fn random_dense(dim: usize, n: usize, seed: u64) -> Vec<PsdMatrix> {
    (0..n)
        .map(|i| {
            let mut rng = rng_for(seed, 1_000 + i as u64);
            let g = Mat::from_fn(dim, dim, |_, _| rng.gen_range(-1.0..1.0));
            let mut a = psdp_linalg::matmul(&g, &g.transpose());
            a.scale(1.0 / dim as f64);
            a.symmetrize();
            PsdMatrix::Dense(a)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_linalg::sym_eigen;

    #[test]
    fn generator_is_deterministic() {
        let p = RandomFactorized::default();
        let a = random_factorized(&p);
        let b = random_factorized(&p);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            let (xd, yd) = (x.to_dense(), y.to_dense());
            assert_eq!(xd.as_slice(), yd.as_slice());
        }
    }

    #[test]
    fn constraints_are_psd_and_normalized() {
        let p = RandomFactorized { dim: 10, n: 5, ..Default::default() };
        for a in random_factorized(&p) {
            let eig = sym_eigen(&a.to_dense()).unwrap();
            assert!(eig.lambda_min() > -1e-10, "PSD violated");
            assert!(eig.lambda_max() < 1.6, "λmax {} too large", eig.lambda_max());
            assert!(eig.lambda_max() > 0.4, "λmax {} too small", eig.lambda_max());
        }
    }

    #[test]
    fn width_knob_inflates_first_constraint() {
        let p = RandomFactorized { width: 8.0, ..Default::default() };
        let mats = random_factorized(&p);
        let lam0 = sym_eigen(&mats[0].to_dense()).unwrap().lambda_max();
        let lam1 = sym_eigen(&mats[1].to_dense()).unwrap().lambda_max();
        assert!(lam0 / lam1 > 5.0, "width ratio {} too small", lam0 / lam1);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_factorized(&RandomFactorized { seed: 1, ..Default::default() });
        let b = random_factorized(&RandomFactorized { seed: 2, ..Default::default() });
        let da = a[0].to_dense();
        let db = b[0].to_dense();
        assert_ne!(da.as_slice(), db.as_slice());
    }

    #[test]
    fn dense_generator_psd() {
        for a in random_dense(6, 3, 7) {
            let eig = sym_eigen(&a.to_dense()).unwrap();
            assert!(eig.lambda_min() > -1e-9);
        }
    }
}
