//! # psdp-workloads
//!
//! Instance generators for the experiments (all deterministic in a seed):
//!
//! * [`beamforming`] — synthetic downlink-beamforming covering SDPs (the
//!   IPS'10 application the paper names as fully inside its framework),
//! * [`random`] — random factorized packing instances with a width knob,
//! * [`diagonal`] — positive-LP (diagonal) instances for cross-validation,
//! * [`ellipse`] — 2-D ellipse packing incl. the Figure 1 instance,
//! * [`commuting`] — simultaneously diagonalizable families with exact
//!   optima,
//! * [`graphs`] — edge-Laplacian packing over random/grid graphs,
//! * [`mixed`] — mixed packing–covering instances (diagonal-embedded LPs
//!   and graph edge-cover families) for the Jain–Yao solver,
//! * [`stream`] — zipf-repeated serving request streams for the
//!   `psdp-serve` scheduler and the `serve_throughput` bench.

#![warn(missing_docs)]

pub mod beamforming;
pub mod commuting;
pub mod diagonal;
pub mod ellipse;
pub mod graphs;
pub mod mixed;
pub mod random;
pub mod stream;

pub use beamforming::{beamforming_sdp, Beamforming};
pub use commuting::{commuting_family, CommutingFamily};
pub use diagonal::{diagonal_columns, random_lp_diagonal, set_cover_packing};
pub use ellipse::{figure1_instance, rotated_family, Ellipse};
pub use graphs::{edge_packing, edge_packing_sparse, gnp, grid, vertex_star_packing};
pub use mixed::{mixed_edge_cover, mixed_lp_diagonal};
pub use random::{random_dense, random_factorized, RandomFactorized};
pub use stream::{
    mixed_request_stream, multi_client_streams, request_stream, stream_frames, stream_jsonl,
    KindedRequest, MixedStreamSpec, RequestStreamSpec, StreamBatch, StreamKind, StreamRequest,
};
