//! Property tests for the baselines: simplex optimality/feasibility and
//! the Young LP solver's guarantee band, on random positive LPs.

use proptest::prelude::*;
use psdp_baselines::{packing_lp_opt, simplex_max, young_packing_lp, LpResult};

/// Random positive packing LP columns: n columns × m rows, nonnegative,
/// each column has at least one entry ≥ 0.1.
fn columns() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..5, 1usize..5).prop_flat_map(|(m, n)| {
        proptest::collection::vec(proptest::collection::vec(0.0_f64..2.0, m), n).prop_map(
            |mut cols| {
                for c in &mut cols {
                    if c.iter().all(|&v| v < 0.1) {
                        c[0] = 1.0;
                    }
                }
                cols
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Simplex returns a feasible solution whose value matches 1ᵀx.
    #[test]
    fn simplex_feasible_and_consistent(cols in columns()) {
        let m = cols[0].len();
        let LpResult::Optimal { x, value } = packing_lp_opt(&cols) else {
            return Ok(()); // unbounded is impossible given column floors
        };
        for j in 0..m {
            let s: f64 = cols.iter().zip(&x).map(|(c, &xi)| c[j] * xi).sum();
            prop_assert!(s <= 1.0 + 1e-7, "row {j} infeasible: {s}");
        }
        let direct: f64 = x.iter().sum();
        prop_assert!((direct - value).abs() < 1e-7 * (1.0 + value.abs()));
        prop_assert!(x.iter().all(|&v| v >= -1e-9));
    }

    /// Simplex dominates the uniform-scaling heuristic (a known feasible
    /// point), i.e. it is at least as good as an easy lower bound.
    #[test]
    fn simplex_beats_uniform_heuristic(cols in columns()) {
        let m = cols[0].len();
        let n = cols.len();
        let LpResult::Optimal { value, .. } = packing_lp_opt(&cols) else {
            return Ok(());
        };
        let worst_row = (0..m)
            .map(|j| cols.iter().map(|c| c[j]).sum::<f64>())
            .fold(0.0_f64, f64::max);
        if worst_row > 0.0 {
            let heuristic = n as f64 / worst_row;
            prop_assert!(value >= heuristic - 1e-7, "simplex {value} < uniform {heuristic}");
        }
    }

    /// Young LP lands in [(1−3ε)OPT, OPT] and is feasible.
    #[test]
    fn young_lp_in_guarantee_band(cols in columns()) {
        let LpResult::Optimal { value: opt, .. } = packing_lp_opt(&cols) else {
            return Ok(());
        };
        let eps = 0.2;
        let r = young_packing_lp(&cols, eps, 200_000);
        let m = cols[0].len();
        for j in 0..m {
            let s: f64 = cols.iter().zip(&r.x).map(|(c, &xi)| c[j] * xi).sum();
            prop_assert!(s <= 1.0 + 1e-7, "row {j} infeasible: {s}");
        }
        prop_assert!(r.value <= opt * (1.0 + 1e-7), "young {} above OPT {opt}", r.value);
        prop_assert!(r.value >= opt * (1.0 - 3.0 * eps) - 1e-9,
            "young {} below guarantee band of OPT {opt}", r.value);
        prop_assert!(r.upper >= opt * (1.0 - 1e-7), "upper {} below OPT {opt}", r.upper);
    }

    /// General simplex: adding a redundant constraint never changes the
    /// optimum; tightening a binding rhs never increases it.
    #[test]
    fn simplex_monotone_in_constraints(cols in columns()) {
        let m = cols[0].len();
        let n = cols.len();
        let a: Vec<Vec<f64>> = (0..m).map(|j| cols.iter().map(|c| c[j]).collect()).collect();
        let LpResult::Optimal { value: base, .. } =
            simplex_max(&a, &vec![1.0; m], &vec![1.0; n]) else { return Ok(()); };

        // Redundant row: all zeros.
        let mut a2 = a.clone();
        a2.push(vec![0.0; n]);
        let LpResult::Optimal { value: with_redundant, .. } =
            simplex_max(&a2, &vec![1.0; m + 1], &vec![1.0; n]) else { return Ok(()); };
        prop_assert!((with_redundant - base).abs() < 1e-7 * (1.0 + base));

        // Halve every rhs: optimum halves (positive homogeneity).
        let LpResult::Optimal { value: halved, .. } =
            simplex_max(&a, &vec![0.5; m], &vec![1.0; n]) else { return Ok(()); };
        prop_assert!((halved - base * 0.5).abs() < 1e-7 * (1.0 + base));
    }
}
