//! Dense tableau simplex for small LPs — the *exact* reference solver.
//!
//! Diagonal positive SDPs are positive LPs, and positive packing LPs are
//! exactly `max cᵀx` s.t. `Ax ≤ b`, `x ≥ 0` with nonnegative data — the form
//! this solver handles (all-slack initial basis is feasible since `b ≥ 0`).
//! The cross-validation experiment (E8) checks the approximate SDP solver's
//! `(1+ε)` bracket against these exact optima.
//!
//! Bland's rule is used for anti-cycling; sizes here are tiny (tens of
//! variables), so the O(mn) per-pivot cost is irrelevant.

/// Outcome of a simplex solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// Optimal solution found: `(x, value)`.
    Optimal {
        /// Optimal variable values.
        x: Vec<f64>,
        /// Optimal objective value `cᵀx`.
        value: f64,
    },
    /// The LP is unbounded above.
    Unbounded,
}

/// Pivot tolerance: entries smaller than this are treated as zero.
const TOL: f64 = 1e-10;

/// Solve `max cᵀx` subject to `Ax ≤ b`, `x ≥ 0` with `b ≥ 0`.
///
/// `a` is row-major, `m × n` (`m = b.len()`, `n = c.len()`).
///
/// # Panics
/// Panics on shape mismatch or a negative entry in `b` (the all-slack basis
/// would be infeasible; positive packing LPs always have `b ≥ 0`).
pub fn simplex_max(a: &[Vec<f64>], b: &[f64], c: &[f64]) -> LpResult {
    let m = b.len();
    let n = c.len();
    assert_eq!(a.len(), m, "A row count");
    for row in a {
        assert_eq!(row.len(), n, "A column count");
    }
    assert!(b.iter().all(|&v| v >= 0.0), "need b >= 0 for the slack basis");

    // Tableau: m constraint rows + 1 objective row; n vars + m slacks + rhs.
    let width = n + m + 1;
    let mut t = vec![vec![0.0_f64; width]; m + 1];
    for (r, row) in a.iter().enumerate() {
        t[r][..n].copy_from_slice(row);
        t[r][n + r] = 1.0;
        t[r][width - 1] = b[r];
    }
    for (j, &cj) in c.iter().enumerate() {
        t[m][j] = -cj;
    }

    let mut basis: Vec<usize> = (n..n + m).collect();

    // Bland's rule: smallest-index entering column with negative reduced
    // cost; smallest-index leaving row on ties. Guarantees termination.
    while let Some(enter) = (0..n + m).find(|&j| t[m][j] < -TOL) {
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for (r, row) in t.iter().enumerate().take(m) {
            if row[enter] > TOL {
                let ratio = row[width - 1] / row[enter];
                if ratio < best_ratio - TOL
                    || (ratio < best_ratio + TOL && leave.is_some_and(|l| basis[r] < basis[l]))
                {
                    best_ratio = ratio;
                    leave = Some(r);
                }
            }
        }
        let Some(lr) = leave else {
            return LpResult::Unbounded;
        };

        // Pivot on (lr, enter).
        let piv = t[lr][enter];
        for v in &mut t[lr] {
            *v /= piv;
        }
        let pivot_row = t[lr].clone();
        for (r, row) in t.iter_mut().enumerate().take(m + 1) {
            if r != lr && row[enter].abs() > TOL {
                let factor = row[enter];
                for (v, &pv) in row.iter_mut().zip(&pivot_row) {
                    *v -= factor * pv;
                }
            }
        }
        basis[lr] = enter;
    }

    let mut x = vec![0.0; n];
    for (r, &bv) in basis.iter().enumerate() {
        if bv < n {
            x[bv] = t[r][width - 1].max(0.0);
        }
    }
    let value = t[m][width - 1];
    LpResult::Optimal { x, value }
}

/// Exact optimum of the positive packing LP `max 1ᵀx` s.t. `Dx ≤ 1`, `x ≥ 0`
/// where column `i` of `D` is `diag_cols[i]` (the diagonal of the `i`-th
/// constraint matrix). This is the diagonal positive SDP's exact value.
///
/// # Panics
/// Panics if columns have inconsistent lengths.
pub fn packing_lp_opt(diag_cols: &[Vec<f64>]) -> LpResult {
    let n = diag_cols.len();
    assert!(n > 0, "need at least one column");
    let m = diag_cols[0].len();
    let mut a = vec![vec![0.0; n]; m];
    for (i, col) in diag_cols.iter().enumerate() {
        assert_eq!(col.len(), m, "ragged diagonal columns");
        for (j, &v) in col.iter().enumerate() {
            assert!(v >= 0.0, "positive LP needs nonnegative data");
            a[j][i] = v;
        }
    }
    let b = vec![1.0; m];
    let c = vec![1.0; n];
    simplex_max(&a, &b, &c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt(r: LpResult) -> (Vec<f64>, f64) {
        match r {
            LpResult::Optimal { x, value } => (x, value),
            LpResult::Unbounded => panic!("unexpected unbounded"),
        }
    }

    #[test]
    fn textbook_2d() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → opt 36 at (2, 6).
        let a = vec![vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]];
        let (x, v) = opt(simplex_max(&a, &[4.0, 12.0, 18.0], &[3.0, 5.0]));
        assert!((v - 36.0).abs() < 1e-9);
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn binding_single_constraint() {
        // max x + y s.t. x + y ≤ 1 → value 1.
        let (_, v) = opt(simplex_max(&[vec![1.0, 1.0]], &[1.0], &[1.0, 1.0]));
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detects_unbounded() {
        // max x with no constraint on x beyond y ≤ 1.
        let r = simplex_max(&[vec![0.0, 1.0]], &[1.0], &[1.0, 0.0]);
        assert_eq!(r, LpResult::Unbounded);
    }

    #[test]
    fn zero_objective() {
        let (x, v) = opt(simplex_max(&[vec![1.0]], &[5.0], &[0.0]));
        assert_eq!(v, 0.0);
        assert_eq!(x, vec![0.0]);
    }

    #[test]
    fn degenerate_rhs_zero() {
        // x ≤ 0 forces x = 0 even though it is profitable.
        let (x, v) = opt(simplex_max(&[vec![1.0]], &[0.0], &[1.0]));
        assert!(v.abs() < 1e-12);
        assert!(x[0].abs() < 1e-12);
    }

    #[test]
    fn packing_lp_orthogonal_columns() {
        // D columns diag(2,0) and diag(0,4): OPT = 1/2 + 1/4.
        let r = packing_lp_opt(&[vec![2.0, 0.0], vec![0.0, 4.0]]);
        let (_, v) = opt(r);
        assert!((v - 0.75).abs() < 1e-9);
    }

    #[test]
    fn packing_lp_shared_row() {
        // Both columns load the same row: x1 + x2 ≤ 1 → OPT = 1.
        let r = packing_lp_opt(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let (_, v) = opt(r);
        assert!((v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn packing_lp_feasibility_of_solution() {
        let cols = vec![vec![1.0, 0.5, 0.0], vec![0.2, 0.9, 0.3], vec![0.0, 0.1, 1.0]];
        let (x, v) = opt(packing_lp_opt(&cols));
        assert!(v > 0.0);
        // Check Dx ≤ 1 row-wise.
        for j in 0..3 {
            let s: f64 = cols.iter().zip(&x).map(|(col, xi)| col[j] * xi).sum();
            assert!(s <= 1.0 + 1e-9, "row {j}: {s}");
        }
    }

    #[test]
    fn larger_random_lp_matches_greedy_bound() {
        // Deterministic pseudo-random LP; simplex value must be ≥ any
        // feasible hand-rolled solution and satisfy all constraints.
        let n = 6;
        let m = 5;
        let a: Vec<Vec<f64>> = (0..m)
            .map(|j| (0..n).map(|i| ((i * 7 + j * 11) % 5) as f64 * 0.25).collect())
            .collect();
        let b = vec![1.0; m];
        let c = vec![1.0; n];
        let (x, v) = opt(simplex_max(&a, &b, &c));
        for row in &a {
            let s: f64 = row.iter().zip(&x).map(|(aji, xi)| aji * xi).sum();
            assert!(s <= 1.0 + 1e-8);
        }
        // Uniform scaling heuristic is feasible; simplex must beat it.
        let row_sums: Vec<f64> = (0..m).map(|j| a[j].iter().sum()).collect();
        let worst = row_sums.iter().fold(0.0_f64, |acc, &s| acc.max(s));
        let heuristic = n as f64 / worst;
        assert!(v >= heuristic - 1e-9, "simplex {v} < heuristic {heuristic}");
    }
}
