//! Width-**dependent** MMW packing-SDP solver (Arora–Kale primal–dual
//! style) — the baseline the width-independence experiment (E3) contrasts
//! against.
//!
//! To test "packing OPT ≥ 1" the algorithm plays the MMW game with the
//! best-response oracle: at each round it puts unit mass on the coordinate
//! minimizing `Aᵢ • P(t)` and incurs the gain `M(t) = A_{i(t)} / ρ`, where
//! `ρ = maxᵢ λmax(Aᵢ)` is the **width**. If the oracle ever fails
//! (`minᵢ Aᵢ•P > 1+ε`), the current `P` is a covering certificate. Otherwise
//! after `T = ⌈c·ρ·ln(m)/ε²⌉` rounds the Theorem 2.1 regret bound makes the
//! average response nearly feasible; feasibility of the returned `x̄` is then
//! certified by measuring `λmax(Σ x̄ᵢAᵢ)` and rescaling.
//!
//! Iterations scale **linearly with the width ρ** — exactly the dependence
//! the paper's algorithm removes (its Section 1.1 motivation).

use psdp_core::{PackingInstance, PsdpError};
use psdp_linalg::{sym_eigen, Mat};

/// Outcome of the width-dependent decision procedure.
#[derive(Debug, Clone)]
pub enum AkOutcome {
    /// Feasible dual `x` (scaled) with value `1ᵀx`.
    Dual {
        /// The feasible packing vector.
        x: Vec<f64>,
        /// Its value.
        value: f64,
    },
    /// Covering certificate: `minᵢ Aᵢ•P > 1+ε` for a trace-1 `P ⪰ 0`.
    Primal {
        /// Per-constraint dots `Aᵢ • P`.
        dots: Vec<f64>,
    },
}

/// Result with telemetry.
#[derive(Debug, Clone)]
pub struct AkResult {
    /// Which side was certified.
    pub outcome: AkOutcome,
    /// Iterations executed.
    pub iterations: usize,
    /// The width `ρ = maxᵢ λmax(Aᵢ)` the schedule was built from.
    pub width: f64,
    /// The iteration budget `T` implied by the width.
    pub budget: usize,
}

/// Run the width-dependent decision procedure at threshold 1.
///
/// `budget_cap` truncates the width-implied schedule `T` (useful in
/// experiments; a truncated run can return a weaker dual).
///
/// # Errors
/// Propagates eigensolver failures.
pub fn ak_decision(
    inst: &PackingInstance,
    eps: f64,
    budget_cap: usize,
) -> Result<AkResult, PsdpError> {
    assert!(eps > 0.0 && eps < 1.0, "eps in (0,1)");
    let m = inst.dim();
    let n = inst.n();

    // Width: the oracle plays single coordinates with unit mass.
    let width = inst.mats().iter().map(|a| a.lambda_max_est()).fold(0.0_f64, f64::max).max(1e-12);

    let eps0 = (eps / 4.0).min(0.5);
    let t_sched = (4.0 * width * (m.max(2) as f64).ln() / (eps0 * eps * 0.25)).ceil() as usize;
    let budget = t_sched.clamp(1, budget_cap);

    // MMW state: cumulative gain Σ M(τ), P = exp(ε₀·Σ M)/tr.
    let mut gain_sum = Mat::zeros(m, m);
    let mut counts = vec![0.0_f64; n];

    for t in 0..budget {
        // P(t) from the cumulative gains (spectral shift for safety).
        let mut scaled = gain_sum.clone();
        scaled.scale(eps0);
        scaled.symmetrize();
        let eig = sym_eigen(&scaled)?;
        let shift = eig.lambda_max();
        let w = eig.apply_fn(|lam| (lam - shift).exp());
        let p = w.scaled(1.0 / w.trace());

        // Best-response oracle.
        let dots: Vec<f64> = inst.mats().iter().map(|a| a.dot_dense(&p)).collect();
        let (best, best_dot) =
            dots.iter().copied().enumerate().min_by(|a, b| a.1.total_cmp(&b.1)).expect("nonempty");
        if best_dot > 1.0 + eps {
            return Ok(AkResult {
                outcome: AkOutcome::Primal { dots },
                iterations: t + 1,
                width,
                budget,
            });
        }
        // Incur gain A_best / ρ (‖M‖ ≤ 1 by the width definition).
        inst.mats()[best].add_scaled_into(&mut gain_sum, 1.0 / width);
        counts[best] += 1.0;
    }

    // x̄ = average of unit responses; certify by measured λmax and rescale.
    let total: f64 = counts.iter().sum();
    let mut x: Vec<f64> = counts.iter().map(|c| c / total).collect();
    let psi = inst.weighted_sum(&x);
    let lam = sym_eigen(&psi)?.lambda_max().max(1e-300);
    let scale = lam.max(1.0) * (1.0 + 1e-9);
    for v in &mut x {
        *v /= scale;
    }
    let value = x.iter().sum();
    Ok(AkResult { outcome: AkOutcome::Dual { x, value }, iterations: budget, width, budget })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_sparse::PsdMatrix;

    fn diag_instance(rows: &[&[f64]]) -> PackingInstance {
        PackingInstance::new(rows.iter().map(|r| PsdMatrix::Diagonal(r.to_vec())).collect())
            .unwrap()
    }

    #[test]
    fn feasible_instance_returns_good_dual() {
        // OPT = 2 ≥ 1: must find a dual with value near 1 (or better).
        let inst = diag_instance(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let r = ak_decision(&inst, 0.2, 50_000).unwrap();
        match r.outcome {
            AkOutcome::Dual { x, value } => {
                assert!(value >= 0.7, "value {value}");
                let psi = inst.weighted_sum(&x);
                let lam = sym_eigen(&psi).unwrap().lambda_max();
                assert!(lam <= 1.0 + 1e-8);
            }
            AkOutcome::Primal { .. } => panic!("feasible instance certified primal"),
        }
    }

    #[test]
    fn infeasible_instance_returns_primal() {
        // OPT = 1/4 < 1: the oracle fails immediately.
        let inst = diag_instance(&[&[4.0, 4.0]]);
        let r = ak_decision(&inst, 0.2, 50_000).unwrap();
        match r.outcome {
            AkOutcome::Primal { dots } => {
                assert!(dots.iter().all(|&d| d > 1.2));
            }
            AkOutcome::Dual { .. } => panic!("infeasible instance certified dual"),
        }
    }

    #[test]
    fn budget_grows_with_width() {
        // Same structure, scaled-up eigenvalues on one constraint ⇒ larger
        // width ⇒ larger schedule. (The iteration *budget* is the point of
        // the E3 comparison.)
        let narrow = diag_instance(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let wide = diag_instance(&[&[8.0, 0.0], &[0.0, 1.0]]);
        let rn = ak_decision(&narrow, 0.3, usize::MAX).unwrap();
        let rw = ak_decision(&wide, 0.3, usize::MAX).unwrap();
        assert!(rw.width > rn.width * 4.0);
        assert!(rw.budget > rn.budget * 4, "budget {} vs {}", rw.budget, rn.budget);
    }

    #[test]
    fn non_diagonal_instance() {
        let mut a1 = Mat::zeros(2, 2);
        a1.rank1_update(1.0, &[1.0, 1.0]); // λmax = 2
        let mut a2 = Mat::zeros(2, 2);
        a2.rank1_update(1.0, &[1.0, -1.0]);
        let inst = PackingInstance::new(vec![PsdMatrix::Dense(a1), PsdMatrix::Dense(a2)]).unwrap();
        let r = ak_decision(&inst, 0.25, 20_000).unwrap();
        if let AkOutcome::Dual { x, .. } = &r.outcome {
            let psi = inst.weighted_sum(x);
            assert!(sym_eigen(&psi).unwrap().lambda_max() <= 1.0 + 1e-8);
        }
    }
}
