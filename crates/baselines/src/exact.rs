//! Exact (or near-exact) reference optima for special instance families.
//!
//! The approximation-quality experiment (E8) needs ground truth. Three
//! families admit it:
//!
//! * **Diagonal** instances — positive LPs; solved exactly by simplex.
//! * **Simultaneously diagonalizable** families — rotate to the common
//!   eigenbasis, where the instance is diagonal, and solve the LP.
//! * **`n ≤ 2` general** instances — the feasible set is 2-dimensional;
//!   parametrize rays `x = r(cos θ, sin θ)` and maximize
//!   `r(θ)(cos θ + sin θ)` with `r(θ) = 1/λmax(cos θ·A₁ + sin θ·A₂)` by a
//!   dense grid plus golden-section refinement.

use crate::simplex::{packing_lp_opt, LpResult};
use psdp_core::{PackingInstance, PsdpError};
use psdp_linalg::{matmul, sym_eigen, Mat};
use psdp_sparse::PsdMatrix;

/// Exact packing optimum of a diagonal instance (positive LP), via simplex.
///
/// # Errors
/// [`PsdpError::InvalidInstance`] if any constraint is not diagonal.
pub fn exact_diagonal_opt(inst: &PackingInstance) -> Result<f64, PsdpError> {
    let mut cols = Vec::with_capacity(inst.n());
    for (i, a) in inst.mats().iter().enumerate() {
        match a {
            PsdMatrix::Diagonal(d) => cols.push(d.clone()),
            _ => return Err(PsdpError::InvalidInstance(format!("constraint {i} is not diagonal"))),
        }
    }
    match packing_lp_opt(&cols) {
        LpResult::Optimal { value, .. } => Ok(value),
        LpResult::Unbounded => {
            Err(PsdpError::InvalidInstance("diagonal LP unbounded (zero column)".into()))
        }
    }
}

/// Exact packing optimum of a simultaneously diagonalizable family: rotate
/// by the supplied common eigenbasis `u` (orthogonal, columns = basis) and
/// solve the diagonal LP over the eigenvalues.
///
/// # Errors
/// [`PsdpError::InvalidInstance`] if rotation does not diagonalize some
/// constraint (off-diagonal residual above `1e-8`).
pub fn exact_commuting_opt(inst: &PackingInstance, u: &Mat) -> Result<f64, PsdpError> {
    let m = inst.dim();
    let mut cols = Vec::with_capacity(inst.n());
    for (i, a) in inst.mats().iter().enumerate() {
        let rotated = matmul(&matmul(&u.transpose(), &a.to_dense()), u);
        let mut diag = vec![0.0; m];
        let mut off = 0.0_f64;
        for r in 0..m {
            for c in 0..m {
                if r == c {
                    diag[r] = rotated[(r, c)].max(0.0);
                } else {
                    off = off.max(rotated[(r, c)].abs());
                }
            }
        }
        if off > 1e-8 * rotated.max_abs().max(1.0) {
            return Err(PsdpError::InvalidInstance(format!(
                "constraint {i} not diagonalized by the supplied basis (residual {off:.2e})"
            )));
        }
        cols.push(diag);
    }
    match packing_lp_opt(&cols) {
        LpResult::Optimal { value, .. } => Ok(value),
        LpResult::Unbounded => Err(PsdpError::InvalidInstance("rotated LP unbounded".into())),
    }
}

/// Near-exact packing optimum for `n ≤ 2` general instances (grid + golden
/// section; relative error ≲ 1e-6 on smooth instances).
///
/// # Errors
/// [`PsdpError::InvalidInstance`] for `n > 2`.
pub fn exact_small_opt(inst: &PackingInstance) -> Result<f64, PsdpError> {
    match inst.n() {
        1 => {
            let lam = sym_eigen(&inst.mats()[0].to_dense())?.lambda_max();
            Ok(1.0 / lam)
        }
        2 => {
            let a1 = inst.mats()[0].to_dense();
            let a2 = inst.mats()[1].to_dense();
            let value = |theta: f64| -> f64 {
                let (c, s) = (theta.cos(), theta.sin());
                let mut mix = a1.scaled(c);
                mix.axpy(s, &a2);
                mix.symmetrize();
                let lam = sym_eigen(&mix).map(|e| e.lambda_max()).unwrap_or(f64::INFINITY);
                if lam <= 0.0 {
                    return 0.0;
                }
                (c + s) / lam
            };
            // Dense grid over [0, π/2], then golden-section refine around
            // the best cell.
            let grid: usize = 512;
            let half_pi = std::f64::consts::FRAC_PI_2;
            let mut best_k = 0;
            let mut best_v = f64::NEG_INFINITY;
            for k in 0..=grid {
                let v = value(half_pi * k as f64 / grid as f64);
                if v > best_v {
                    best_v = v;
                    best_k = k;
                }
            }
            let mut lo = half_pi * best_k.saturating_sub(1) as f64 / grid as f64;
            let mut hi = half_pi * (best_k + 1).min(grid) as f64 / grid as f64;
            let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
            for _ in 0..80 {
                let m1 = hi - phi * (hi - lo);
                let m2 = lo + phi * (hi - lo);
                if value(m1) < value(m2) {
                    lo = m1;
                } else {
                    hi = m2;
                }
            }
            Ok(value(0.5 * (lo + hi)).max(best_v))
        }
        n => Err(PsdpError::InvalidInstance(format!("exact_small_opt supports n ≤ 2, got {n}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(d: &[f64]) -> PsdMatrix {
        PsdMatrix::Diagonal(d.to_vec())
    }

    #[test]
    fn diagonal_exact_matches_hand_calc() {
        let inst = PackingInstance::new(vec![diag(&[2.0, 0.0]), diag(&[0.0, 4.0])]).unwrap();
        let v = exact_diagonal_opt(&inst).unwrap();
        assert!((v - 0.75).abs() < 1e-9);
    }

    #[test]
    fn diagonal_exact_rejects_dense() {
        let inst = PackingInstance::new(vec![PsdMatrix::Dense(Mat::identity(2))]).unwrap();
        assert!(exact_diagonal_opt(&inst).is_err());
    }

    #[test]
    fn single_constraint_inverse_lambda_max() {
        let mut a = Mat::zeros(3, 3);
        a.rank1_update(2.0, &[1.0, 1.0, 0.0]); // λmax = 4
        let inst = PackingInstance::new(vec![PsdMatrix::Dense(a)]).unwrap();
        let v = exact_small_opt(&inst).unwrap();
        assert!((v - 0.25).abs() < 1e-9);
    }

    #[test]
    fn two_orthogonal_projectors() {
        // A₁ = e₁e₁ᵀ, A₂ = e₂e₂ᵀ: OPT = 2 (x = (1,1)).
        let mut a1 = Mat::zeros(2, 2);
        a1.rank1_update(1.0, &[1.0, 0.0]);
        let mut a2 = Mat::zeros(2, 2);
        a2.rank1_update(1.0, &[0.0, 1.0]);
        let inst = PackingInstance::new(vec![PsdMatrix::Dense(a1), PsdMatrix::Dense(a2)]).unwrap();
        let v = exact_small_opt(&inst).unwrap();
        assert!((v - 2.0).abs() < 1e-4, "got {v}");
    }

    #[test]
    fn two_identical_matrices() {
        // A₁ = A₂ = I: OPT = 1 (x₁+x₂ = 1).
        let inst = PackingInstance::new(vec![
            PsdMatrix::Dense(Mat::identity(2)),
            PsdMatrix::Dense(Mat::identity(2)),
        ])
        .unwrap();
        let v = exact_small_opt(&inst).unwrap();
        assert!((v - 1.0).abs() < 1e-6, "got {v}");
    }

    #[test]
    fn small_opt_agrees_with_diagonal_lp() {
        // Cross-check the geometric method against simplex on a diagonal
        // 2-constraint instance.
        let d1 = vec![1.0, 0.4, 0.1];
        let d2 = vec![0.2, 0.9, 0.5];
        let inst = PackingInstance::new(vec![diag(&d1), diag(&d2)]).unwrap();
        let geo = exact_small_opt(&inst).unwrap();
        let lp = exact_diagonal_opt(&inst).unwrap();
        assert!((geo - lp).abs() < 1e-5, "geometric {geo} vs simplex {lp}");
    }

    #[test]
    fn commuting_family_via_rotation() {
        // Build commuting matrices from a shared basis, check against the
        // eigenvalue LP.
        let u = psdp_linalg::orthonormalize(&Mat::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]]));
        let lam1 = [2.0, 0.5];
        let lam2 = [0.3, 1.5];
        let mk = |lams: &[f64; 2]| {
            let d = Mat::from_diag(lams);
            let mut a = matmul(&matmul(&u, &d), &u.transpose());
            a.symmetrize();
            PsdMatrix::Dense(a)
        };
        let inst = PackingInstance::new(vec![mk(&lam1), mk(&lam2)]).unwrap();
        let v = exact_commuting_opt(&inst, &u).unwrap();
        let lp = match packing_lp_opt(&[lam1.to_vec(), lam2.to_vec()]) {
            LpResult::Optimal { value, .. } => value,
            _ => panic!(),
        };
        assert!((v - lp).abs() < 1e-9);
        // Also agrees with the geometric 2-constraint method.
        let geo = exact_small_opt(&inst).unwrap();
        assert!((v - geo).abs() < 1e-5, "{v} vs {geo}");
    }

    #[test]
    fn commuting_rejects_wrong_basis() {
        let mut a1 = Mat::zeros(2, 2);
        a1.rank1_update(1.0, &[1.0, 0.5]);
        let inst = PackingInstance::new(vec![PsdMatrix::Dense(a1)]).unwrap();
        let u = Mat::identity(2);
        assert!(exact_commuting_opt(&inst, &u).is_err());
    }
}
