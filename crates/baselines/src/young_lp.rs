//! Young-style width-independent positive **LP** solver — the scalar
//! ancestor (Young, FOCS 2001) that Algorithm 3.1 generalizes.
//!
//! For the packing LP `max 1ᵀx` s.t. `Dx ≤ 1`, `x ≥ 0` (`D ≥ 0`, `m` rows),
//! the decision core mirrors Algorithm 3.1 with the soft-max potential
//! `w_j = exp((Dx)_j)` in place of the matrix exponential:
//!
//! ```text
//! x⁰ᵢ = 1/(n·Σ_j D_ji);   while ‖x‖₁ ≤ K:
//!     ratioᵢ = Σ_j D_ji w_j / Σ_j w_j
//!     B = { i : ratioᵢ ≤ 1+ε };  x_B ← (1+α)·x_B
//! ```
//!
//! * `‖x‖₁ > K` ⇒ dual side: the rescaled `x` is a near-optimal packing,
//! * `B = ∅` ⇒ primal side: the normalized weights `y = w/Σw` form a
//!   covering certificate (`Σ_j D_ji y_j > 1+ε` for every `i`), which
//!   upper-bounds the optimum.
//!
//! Optimization then wraps the decision core in the same geometric
//! bisection `approxPSDP` uses (Lemma 2.2), scaling the columns by `σ`.
//!
//! On diagonal SDP instances this must agree with the matrix solver (matrix
//! exponentials of diagonal matrices *are* the scalar exponentials) — the
//! cross-validation tests exploit that.

use psdp_mmw::paper_constants;

/// One decision-call outcome at threshold 1.
#[derive(Debug, Clone)]
pub enum YoungDecision {
    /// `‖x‖₁` crossed `K`: a feasible packing vector with value `≥ 1−O(ε)`.
    Dual {
        /// Feasible (rescaled) packing vector.
        x: Vec<f64>,
        /// Its value `1ᵀx`.
        value: f64,
    },
    /// The eligible set emptied: covering certificate with per-column loads
    /// `Σ_j D_ji y_j` all `> 1+ε`, establishing `OPT ≤ 1/min_load`.
    Primal {
        /// Normalized covering weights (`Σ y = 1`).
        y: Vec<f64>,
        /// `minᵢ Σ_j D_ji y_j` (> 1+ε by construction).
        min_load: f64,
    },
}

/// Result of the LP optimizer.
#[derive(Debug, Clone)]
pub struct YoungLpResult {
    /// Best feasible packing vector found (original scale).
    pub x: Vec<f64>,
    /// Its value `1ᵀx` — a certified lower bound on OPT.
    pub value: f64,
    /// Certified upper bound on OPT (from the last covering certificate).
    pub upper: f64,
    /// Total inner iterations across all decision calls.
    pub iterations: usize,
    /// Decision calls made by the bisection.
    pub calls: usize,
}

fn validate(cols: &[Vec<f64>], eps: f64) -> usize {
    let n = cols.len();
    assert!(n > 0, "need at least one column");
    let m = cols[0].len();
    assert!(m > 0, "need at least one row");
    for (i, c) in cols.iter().enumerate() {
        assert_eq!(c.len(), m, "column {i} has wrong length");
        assert!(c.iter().all(|&v| v >= 0.0), "column {i} has negative entries");
        assert!(c.iter().any(|&v| v > 0.0), "column {i} is zero (LP unbounded)");
    }
    assert!(eps > 0.0 && eps < 1.0);
    m
}

/// Decision core at threshold 1 (see module docs). Returns the outcome and
/// the iterations used.
pub fn young_decision(cols: &[Vec<f64>], eps: f64, max_iters: usize) -> (YoungDecision, usize) {
    let m = validate(cols, eps);
    let n = cols.len();
    let pc = paper_constants(n, eps);
    let k_threshold = pc.k_threshold;
    let alpha = pc.alpha * 16.0; // practical boost, mirroring the SDP solver

    let col_sums: Vec<f64> = cols.iter().map(|c| c.iter().sum()).collect();
    let mut x: Vec<f64> = col_sums.iter().map(|s| 1.0 / (n as f64 * s)).collect();
    let mut z = vec![0.0_f64; m]; // z = Dx, maintained incrementally
    for (i, c) in cols.iter().enumerate() {
        for (j, &v) in c.iter().enumerate() {
            z[j] += x[i] * v;
        }
    }

    let mut weights = vec![0.0_f64; m];
    let mut iters = 0;
    while iters < max_iters {
        iters += 1;
        let zmax = z.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        for (w, &zj) in weights.iter_mut().zip(&z) {
            *w = (zj - zmax).exp();
        }
        let wsum: f64 = weights.iter().sum();

        let mut updates: Vec<(usize, f64)> = Vec::new();
        let mut min_load = f64::INFINITY;
        for (i, c) in cols.iter().enumerate() {
            let load: f64 = c.iter().zip(&weights).map(|(a, w)| a * w).sum::<f64>() / wsum;
            min_load = min_load.min(load);
            if load <= 1.0 + eps {
                updates.push((i, alpha * x[i]));
            }
        }
        if updates.is_empty() {
            let y: Vec<f64> = weights.iter().map(|w| w / wsum).collect();
            return (YoungDecision::Primal { y, min_load }, iters);
        }
        for &(i, delta) in &updates {
            x[i] += delta;
            for (j, &v) in cols[i].iter().enumerate() {
                z[j] += delta * v;
            }
        }
        if x.iter().sum::<f64>() > k_threshold {
            break;
        }
    }

    // Dual exit: certify feasibility by the measured max load.
    let dx_max = z.iter().fold(0.0_f64, |a, &b| a.max(b)).max(1e-300);
    let scale = dx_max.max(1.0);
    let xs: Vec<f64> = x.iter().map(|v| v / scale).collect();
    let value = xs.iter().sum();
    (YoungDecision::Dual { x: xs, value }, iters)
}

/// Optimize the packing LP `max 1ᵀx, Dx ≤ 1, x ≥ 0` to `(1±O(ε))` by
/// geometric bisection over the decision core. `cols[i]` is column `i` of
/// `D`.
///
/// ```
/// use psdp_baselines::young_packing_lp;
///
/// // max x₁+x₂ s.t. 2x₁ ≤ 1, 4x₂ ≤ 1:  OPT = 0.75.
/// let r = young_packing_lp(&[vec![2.0, 0.0], vec![0.0, 4.0]], 0.1, 400_000);
/// assert!(r.value >= 0.75 * 0.7 && r.value <= 0.75);
/// assert!(r.upper >= 0.75 * (1.0 - 1e-9));
/// ```
///
/// # Panics
/// Panics on malformed input (see [`young_decision`]).
pub fn young_packing_lp(cols: &[Vec<f64>], eps: f64, max_iters: usize) -> YoungLpResult {
    let m = validate(cols, eps);
    let n = cols.len();

    // Structural bracket: xᵢ ≤ 1/max_j D_ji for any feasible point.
    let caps: Vec<f64> =
        cols.iter().map(|c| 1.0 / c.iter().fold(0.0_f64, |a, &b| a.max(b)).max(1e-300)).collect();
    let mut lo = caps.iter().fold(0.0_f64, |a, &b| a.max(b)) * 0.5;
    let mut hi = caps.iter().sum::<f64>() * 2.0;

    let mut best_x = vec![0.0; n];
    let mut best_value = 0.0;
    let mut iterations = 0;
    let mut calls = 0;

    while hi > lo * (1.0 + eps) && calls < 60 {
        calls += 1;
        let sigma = (lo * hi).sqrt();
        let scaled: Vec<Vec<f64>> =
            cols.iter().map(|c| c.iter().map(|v| v * sigma).collect()).collect();
        let (dec, it) = young_decision(&scaled, eps / 2.0, max_iters);
        iterations += it;
        match dec {
            YoungDecision::Dual { x, value } => {
                // x feasible for σD ⇒ σx feasible for D with value σ·value.
                let v = sigma * value;
                if v > best_value {
                    best_value = v;
                    best_x = x.iter().map(|xi| xi * sigma).collect();
                }
                lo = lo.max(v);
            }
            YoungDecision::Primal { min_load, .. } => {
                hi = hi.min(sigma / min_load.max(1e-12));
            }
        }
        if lo > hi {
            let mid = (lo * hi).sqrt();
            lo = mid;
            hi = mid;
        }
    }
    let _ = m;
    YoungLpResult { x: best_x, value: best_value, upper: hi, iterations, calls }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::{packing_lp_opt, LpResult};

    fn exact(cols: &[Vec<f64>]) -> f64 {
        match packing_lp_opt(cols) {
            LpResult::Optimal { value, .. } => value,
            LpResult::Unbounded => panic!("unbounded"),
        }
    }

    fn check_instance(cols: &[Vec<f64>], eps: f64) {
        let r = young_packing_lp(cols, eps, 400_000);
        let opt = exact(cols);
        // Feasibility.
        let m = cols[0].len();
        for j in 0..m {
            let s: f64 = cols.iter().zip(&r.x).map(|(c, &xi)| c[j] * xi).sum();
            assert!(s <= 1.0 + 1e-9, "row {j} violated: {s}");
        }
        // Near-optimality.
        assert!(
            r.value >= opt * (1.0 - 3.0 * eps),
            "value {} too far below OPT {opt} (eps {eps})",
            r.value
        );
        assert!(r.value <= opt * (1.0 + 1e-9), "value above OPT?");
        // Upper bound brackets the optimum.
        assert!(r.upper >= opt * (1.0 - 1e-9), "upper {} below OPT {opt}", r.upper);
    }

    #[test]
    fn orthogonal_columns() {
        check_instance(&[vec![2.0, 0.0], vec![0.0, 4.0]], 0.1);
    }

    #[test]
    fn shared_row() {
        check_instance(&[vec![1.0, 1.0], vec![1.0, 1.0]], 0.1);
    }

    #[test]
    fn asymmetric_instance() {
        check_instance(&[vec![1.0, 0.5, 0.0], vec![0.2, 0.9, 0.3], vec![0.0, 0.1, 1.0]], 0.1);
    }

    #[test]
    fn wide_instance_many_columns() {
        let cols: Vec<Vec<f64>> = (0..10)
            .map(|i| (0..4).map(|j| (((i + j * 3) % 5) as f64) * 0.3 + 0.05).collect())
            .collect();
        check_instance(&cols, 0.15);
    }

    #[test]
    fn decision_primal_side_certifies() {
        // OPT = 1/3 < 1 ⇒ decision must come back primal with load > 1+ε.
        let (dec, _) = young_decision(&[vec![3.0, 3.0]], 0.2, 100_000);
        match dec {
            YoungDecision::Primal { y, min_load } => {
                assert!(min_load > 1.2);
                let ysum: f64 = y.iter().sum();
                assert!((ysum - 1.0).abs() < 1e-9);
            }
            YoungDecision::Dual { .. } => panic!("expected primal certificate"),
        }
    }

    #[test]
    fn decision_dual_side_on_feasible() {
        // OPT = 2 > 1 ⇒ dual outcome with value ≥ 1−O(ε).
        let (dec, _) = young_decision(&[vec![1.0, 0.0], vec![0.0, 1.0]], 0.2, 400_000);
        match dec {
            YoungDecision::Dual { x, value } => {
                assert!(value >= 0.7, "value {value}");
                assert!(x.iter().all(|&v| v <= 1.0 + 1e-9));
            }
            YoungDecision::Primal { .. } => panic!("expected dual"),
        }
    }

    #[test]
    #[should_panic]
    fn rejects_zero_column() {
        let _ = young_packing_lp(&[vec![0.0, 0.0]], 0.1, 100);
    }
}
