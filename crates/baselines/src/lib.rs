//! # psdp-baselines
//!
//! Comparators for the experiments:
//!
//! * [`ak`] — width-**dependent** MMW packing solver (the dependence the
//!   paper removes; E3's foil),
//! * [`young_lp`] — Young '01-style width-independent positive **LP**
//!   solver (the scalar ancestor; cross-validates the diagonal case),
//! * [`simplex`] — exact dense simplex (ground truth for LPs),
//! * [`exact`] — exact/near-exact packing optima for diagonal, commuting,
//!   and `n ≤ 2` instances,
//! * [`mixed_lp`] — Young '01 mixed packing/covering LP solver (the scalar
//!   case of the paper's named future-work direction).

#![warn(missing_docs)]

pub mod ak;
pub mod exact;
pub mod mixed_lp;
pub mod simplex;
pub mod young_lp;

pub use ak::{ak_decision, AkOutcome, AkResult};
pub use exact::{exact_commuting_opt, exact_diagonal_opt, exact_small_opt};
pub use mixed_lp::{mixed_exact_threshold, mixed_packing_covering, MixedLpResult, MixedOutcome};
pub use simplex::{packing_lp_opt, simplex_max, LpResult};
pub use young_lp::{young_decision, young_packing_lp, YoungDecision, YoungLpResult};
