//! Mixed packing/covering LP solver (Young, FOCS 2001) — the scalar case of
//! the extension the paper's conclusion names as future work ("extending
//! these algorithms to solve mixed packing/covering SDPs").
//!
//! Normalized feasibility problem: find `x ≥ 0` with
//!
//! ```text
//!   P x ≤ 1   (packing rows)    and    C x ≥ 1   (covering rows),
//! ```
//!
//! `P, C ≥ 0`. The width-independent algorithm maintains soft-max packing
//! weights `y_j ∝ exp((Px)_j)` and soft-min covering weights
//! `z_i ∝ exp(−(Cx)_i)`, and multiplicatively increases every coordinate
//! whose *packing price* is at most `(1+ε)` times its *covering price*:
//!
//! ```text
//!   price_P(k) = (Pᵀy)_k / 1ᵀy,   price_C(k) = (Cᵀz)_k / 1ᵀz,
//!   B = { k : price_P(k) ≤ (1+ε)·price_C(k) }.
//! ```
//!
//! If coverage reaches the soft-max target `T = Θ(ln(m)/ε)` the scaled
//! iterate is approximately feasible; if `B` empties, the normalized weight
//! pair `(y, z)` is an infeasibility certificate: every unit of any
//! coordinate costs more (against `y`) than it covers (against `z`), so by
//! LP duality no feasible point exists at threshold 1.
//!
//! Outputs are certified by measurement (`max Px`, `min Cx` recomputed), so
//! the guarantee band in the result is unconditional.

use crate::simplex::{simplex_max, LpResult};

/// Exact feasibility threshold of a mixed packing/covering LP via simplex:
/// `t* = max t` s.t. `Px ≤ 1`, `Cx ≥ t·1`, `x ≥ 0`. The normalized
/// problem is feasible at threshold 1 iff `t* ≥ 1`. `pack_cols[k]` /
/// `cover_cols[k]` are the `k`-th columns of `P` / `C`. Returns
/// `f64::INFINITY` when the coverage direction is unbounded (some
/// coordinate covers without packing cost).
///
/// This is the ground-truth oracle the mixed differential tests compare
/// both the scalar solver ([`mixed_packing_covering`]) and the mixed SDP
/// solver (on diagonal embeddings) against.
///
/// # Panics
/// Panics on empty or ragged column sets.
pub fn mixed_exact_threshold(pack_cols: &[Vec<f64>], cover_cols: &[Vec<f64>]) -> f64 {
    let n = pack_cols.len();
    assert!(n > 0 && cover_cols.len() == n, "need matching, nonempty column sets");
    let mp = pack_cols[0].len();
    let mc = cover_cols[0].len();
    // Variables (x_1…x_n, t); rows: P x ≤ 1 and t − (Cx)_i ≤ 0.
    let mut a = Vec::with_capacity(mp + mc);
    for j in 0..mp {
        let mut row: Vec<f64> = pack_cols.iter().map(|col| col[j]).collect();
        row.push(0.0);
        a.push(row);
    }
    for i in 0..mc {
        let mut row: Vec<f64> = cover_cols.iter().map(|col| -col[i]).collect();
        row.push(1.0);
        a.push(row);
    }
    let mut b = vec![1.0; mp];
    b.extend(vec![0.0; mc]);
    let mut c = vec![0.0; n];
    c.push(1.0);
    match simplex_max(&a, &b, &c) {
        LpResult::Optimal { value, .. } => value,
        LpResult::Unbounded => f64::INFINITY,
    }
}

/// Outcome of the mixed packing/covering solver.
#[derive(Debug, Clone)]
pub enum MixedOutcome {
    /// An approximately feasible point: `max(Px) ≤ pack_max`,
    /// `min(Cx) ≥ cover_min` with `pack_max ≤ 1`, `cover_min ≥ 1 − O(ε)`.
    Feasible {
        /// The point (already rescaled so `Px ≤ 1` exactly).
        x: Vec<f64>,
        /// Measured `max_j (Px)_j` after rescaling (≤ 1).
        pack_max: f64,
        /// Measured `min_i (Cx)_i` after rescaling.
        cover_min: f64,
    },
    /// Dual infeasibility certificate: normalized weights `(y, z)` with
    /// `Pᵀy > (1+ε)·Cᵀz` coordinatewise.
    Infeasible {
        /// Packing-row weights (sum 1).
        y: Vec<f64>,
        /// Covering-row weights (sum 1).
        z: Vec<f64>,
    },
}

/// Result with telemetry.
#[derive(Debug, Clone)]
pub struct MixedLpResult {
    /// Feasible point or certificate.
    pub outcome: MixedOutcome,
    /// Iterations used.
    pub iterations: usize,
}

/// Solve the normalized mixed packing/covering feasibility problem.
/// `pack_cols[k]` / `cover_cols[k]` are the `k`-th columns of `P` / `C`.
///
/// # Panics
/// Panics on empty/ragged input, negative entries, a coordinate with no
/// covering contribution at all when it has no packing cost (ill-posed), or
/// `eps ∉ (0,1)`.
pub fn mixed_packing_covering(
    pack_cols: &[Vec<f64>],
    cover_cols: &[Vec<f64>],
    eps: f64,
    max_iters: usize,
) -> MixedLpResult {
    let n = pack_cols.len();
    assert!(n > 0 && cover_cols.len() == n, "need matching, nonempty column sets");
    let mp = pack_cols[0].len();
    let mc = cover_cols[0].len();
    assert!(mp > 0 && mc > 0, "need at least one row on each side");
    for k in 0..n {
        assert_eq!(pack_cols[k].len(), mp, "ragged packing column {k}");
        assert_eq!(cover_cols[k].len(), mc, "ragged covering column {k}");
        assert!(pack_cols[k].iter().all(|&v| v >= 0.0), "negative packing entry");
        assert!(cover_cols[k].iter().all(|&v| v >= 0.0), "negative covering entry");
    }
    assert!(eps > 0.0 && eps < 1.0);

    // Soft-max coverage target; once min(Cx) reaches T the ln(m) additive
    // slop of the exponential potential is an ε-fraction.
    let t_target = 2.0 * ((mp + mc) as f64).ln().max(1.0) / eps;
    let alpha = eps / 4.0;

    // Small multiplicative start (coordinates with zero packing cost still
    // need a finite start; use their covering scale).
    let mut x: Vec<f64> = (0..n)
        .map(|k| {
            let pmax = pack_cols[k].iter().fold(0.0_f64, |a, &b| a.max(b));
            let cmax = cover_cols[k].iter().fold(0.0_f64, |a, &b| a.max(b));
            let scale = pmax.max(cmax).max(1e-12);
            1.0 / (n as f64 * scale * t_target.max(1.0))
        })
        .collect();

    let mut px = vec![0.0_f64; mp];
    let mut cx = vec![0.0_f64; mc];
    for k in 0..n {
        for (j, &v) in pack_cols[k].iter().enumerate() {
            px[j] += x[k] * v;
        }
        for (i, &v) in cover_cols[k].iter().enumerate() {
            cx[i] += x[k] * v;
        }
    }

    let mut iterations = 0;
    while iterations < max_iters {
        iterations += 1;

        // Success: coverage target reached everywhere.
        let cover_min_raw = cx.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        if cover_min_raw >= t_target {
            break;
        }

        // Weights with overflow shifts.
        let pmax = px.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let y: Vec<f64> = px.iter().map(|&v| (v - pmax).exp()).collect();
        let ysum: f64 = y.iter().sum();
        let cmin = cx.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        let z: Vec<f64> = cx.iter().map(|&v| (cmin - v).exp()).collect();
        let zsum: f64 = z.iter().sum();

        // Eligible set by price comparison; skip rows already covered past
        // the target (their covering price is then irrelevant noise).
        let mut updates: Vec<(usize, f64)> = Vec::new();
        for k in 0..n {
            let price_p: f64 = pack_cols[k].iter().zip(&y).map(|(a, w)| a * w).sum::<f64>() / ysum;
            let price_c: f64 = cover_cols[k].iter().zip(&z).map(|(a, w)| a * w).sum::<f64>() / zsum;
            if price_p <= (1.0 + eps) * price_c {
                updates.push((k, alpha * x[k]));
            }
        }
        if updates.is_empty() {
            let yn: Vec<f64> = y.iter().map(|v| v / ysum).collect();
            let zn: Vec<f64> = z.iter().map(|v| v / zsum).collect();
            return MixedLpResult {
                outcome: MixedOutcome::Infeasible { y: yn, z: zn },
                iterations,
            };
        }
        for &(k, delta) in &updates {
            x[k] += delta;
            for (j, &v) in pack_cols[k].iter().enumerate() {
                px[j] += delta * v;
            }
            for (i, &v) in cover_cols[k].iter().enumerate() {
                cx[i] += delta * v;
            }
        }
    }

    // Certify by measurement: rescale so max(Px) ≤ 1 exactly, then report
    // the measured coverage.
    let pack_raw = px.iter().fold(0.0_f64, |a, &b| a.max(b));
    let cover_raw = cx.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    let scale = pack_raw.max(cover_raw).max(1e-300);
    // Scale by packing if it binds, otherwise normalize coverage to 1.
    let s = if pack_raw >= cover_raw { pack_raw } else { cover_raw };
    let _ = scale;
    let xs: Vec<f64> = x.iter().map(|v| v / s).collect();
    let pack_max = pack_raw / s;
    let cover_min = cover_raw / s;
    MixedLpResult { outcome: MixedOutcome::Feasible { x: xs, pack_max, cover_min }, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Alias kept so the test bodies read like the paper: the public
    /// simplex oracle.
    fn exact_threshold(pack_cols: &[Vec<f64>], cover_cols: &[Vec<f64>]) -> f64 {
        mixed_exact_threshold(pack_cols, cover_cols)
    }

    #[test]
    fn trivially_feasible_identity() {
        // P = C = 1×1 identity column: x = 1 is exactly feasible.
        let r = mixed_packing_covering(&[vec![1.0]], &[vec![1.0]], 0.1, 500_000);
        match r.outcome {
            MixedOutcome::Feasible { pack_max, cover_min, .. } => {
                assert!(pack_max <= 1.0 + 1e-9);
                assert!(cover_min >= 1.0 - 0.35, "coverage {cover_min}");
            }
            MixedOutcome::Infeasible { .. } => panic!("feasible instance declared infeasible"),
        }
    }

    #[test]
    fn clearly_infeasible() {
        // 2x ≤ 1 and x ≥ 1 cannot hold.
        let r = mixed_packing_covering(&[vec![2.0]], &[vec![1.0]], 0.1, 500_000);
        match r.outcome {
            MixedOutcome::Infeasible { y, z } => {
                assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                assert!((z.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
            MixedOutcome::Feasible { pack_max, cover_min, .. } => {
                // Accept only if the measured point actually refutes
                // infeasibility — it cannot, so fail loudly.
                panic!(
                    "infeasible instance declared feasible (pack {pack_max}, cover {cover_min})"
                );
            }
        }
    }

    #[test]
    fn comfortably_feasible_two_coordinates() {
        // x = (1/2, 1/2): P x = (1/2+1/2) = 1… use P rows loose, C rows easy.
        let pack = vec![vec![1.0, 0.0], vec![0.0, 1.0]]; // x ≤ 1 each
        let cover = vec![vec![2.0], vec![2.0]]; // 2x1 + 2x2 ≥ 1
        let r = mixed_packing_covering(&pack, &cover, 0.1, 500_000);
        match r.outcome {
            MixedOutcome::Feasible { x, pack_max, cover_min } => {
                assert!(pack_max <= 1.0 + 1e-9);
                assert!(cover_min >= 1.0 - 0.35, "coverage {cover_min}");
                assert!(x.iter().all(|&v| v >= 0.0));
            }
            MixedOutcome::Infeasible { .. } => panic!("should be feasible"),
        }
    }

    #[test]
    fn agrees_with_simplex_threshold_on_random_instances() {
        // Deterministic pseudo-random instances; compare against the exact
        // max-coverage threshold t*. The approximate solver must say
        // feasible when t* ≥ 1.4 and infeasible when t* ≤ 0.7 (the wide
        // margins absorb its ε-slack on both sides).
        for seed in 0..8u64 {
            let n = 3usize;
            let mp = 3usize;
            let mc = 2usize;
            let gen = |a: u64, b: usize, c: usize| {
                (((seed.wrapping_mul(31).wrapping_add(a) as usize + 7 * b + 13 * c) % 10) as f64)
                    / 10.0
            };
            let pack: Vec<Vec<f64>> =
                (0..n).map(|k| (0..mp).map(|j| gen(1, k, j)).collect()).collect();
            let mut cover: Vec<Vec<f64>> =
                (0..n).map(|k| (0..mc).map(|i| gen(2, k, i) * 0.8).collect()).collect();
            // Ensure every coordinate covers something.
            for c in &mut cover {
                if c.iter().all(|&v| v == 0.0) {
                    c[0] = 0.3;
                }
            }
            let tstar = exact_threshold(&pack, &cover);
            let r = mixed_packing_covering(&pack, &cover, 0.1, 400_000);
            match r.outcome {
                MixedOutcome::Feasible { pack_max, cover_min, .. } => {
                    assert!(pack_max <= 1.0 + 1e-9);
                    if tstar <= 0.7 {
                        panic!("seed {seed}: declared feasible but t* = {tstar}");
                    }
                    // Coverage quality only guaranteed when comfortably
                    // feasible.
                    if tstar >= 1.4 {
                        assert!(
                            cover_min >= 1.0 - 0.4,
                            "seed {seed}: weak coverage {cover_min} at t* = {tstar}"
                        );
                    }
                }
                MixedOutcome::Infeasible { y, z } => {
                    assert!(tstar <= 1.4, "seed {seed}: declared infeasible but t* = {tstar}");
                    // Certificate property: price_P(k) > (1+ε) price_C(k) ∀k.
                    for k in 0..n {
                        let pp: f64 = pack[k].iter().zip(&y).map(|(a, w)| a * w).sum();
                        let pc: f64 = cover[k].iter().zip(&z).map(|(a, w)| a * w).sum();
                        assert!(
                            pp > (1.0 + 0.1) * pc - 1e-9,
                            "seed {seed}: certificate violated at k={k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn rejects_ragged() {
        let _ = mixed_packing_covering(&[vec![1.0]], &[vec![1.0], vec![1.0, 2.0]], 0.1, 10);
    }
}
