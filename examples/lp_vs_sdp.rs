//! Positive LPs are diagonal positive SDPs: three solvers, one answer.
//!
//! On random diagonal instances this runs (1) exact simplex, (2) the scalar
//! Young-style width-independent LP solver, and (3) the full matrix SDP
//! solver, and checks they agree to within the approximation guarantees —
//! the SDP ⊇ LP consistency story from the paper's introduction.
//!
//! ```text
//! cargo run -p psdp-bench --release --example lp_vs_sdp
//! ```

use psdp_baselines::{exact_diagonal_opt, young_packing_lp};
use psdp_core::{solve_packing, ApproxOptions, PackingInstance};
use psdp_workloads::{diagonal_columns, random_lp_diagonal};

fn main() {
    let eps = 0.1;
    println!("positive LP three ways (eps = {eps}):\n");
    println!(
        "{:>6} {:>4} {:>4} {:>10} {:>10} {:>16} {:>7}",
        "seed", "m", "n", "simplex", "young-lp", "sdp bracket", "agree"
    );
    for seed in 1..=6u64 {
        let (m, n) = (8usize, 6usize);
        let mats = random_lp_diagonal(m, n, 0.6, seed);
        let cols = diagonal_columns(&mats);
        let inst = PackingInstance::new(mats).expect("valid");

        let exact = exact_diagonal_opt(&inst).expect("simplex");
        let young = young_packing_lp(&cols, eps, 400_000);
        let sdp = solve_packing(&inst, &ApproxOptions::practical(eps)).expect("sdp");

        let agree = young.value >= exact * (1.0 - 3.0 * eps)
            && young.value <= exact * (1.0 + 1e-9)
            && sdp.value_lower <= exact * (1.0 + 1e-9)
            && sdp.value_upper >= exact * (1.0 - 1e-9);
        println!(
            "{:>6} {:>4} {:>4} {:>10.4} {:>10.4} [{:>6.4}, {:>6.4}] {:>7}",
            seed, m, n, exact, young.value, sdp.value_lower, sdp.value_upper, agree
        );
        assert!(agree, "solvers disagree on seed {seed}");
    }
    println!("\nall three solvers agree within their guarantees; ok");
}
