//! Mixed packing/covering — the paper's future-work direction, scalar case.
//!
//! The conclusion of the paper singles out mixed packing/covering SDPs as
//! "an interesting direction for future work"; the LP case is Young's FOCS
//! 2001 result, which this repository implements as a baseline extension.
//! This example solves resource-allocation feasibility problems
//! (`Px ≤ 1` capacity rows, `Cx ≥ 1` demand rows) and cross-checks each
//! answer against the exact simplex threshold `t* = max{t : Px ≤ 1, Cx ≥ t}`.
//!
//! ```text
//! cargo run -p psdp-bench --release --example mixed_packing_covering
//! ```

use psdp_baselines::{mixed_packing_covering, simplex_max, LpResult, MixedOutcome};

/// Column-major constraint block: one inner `Vec` per variable.
type Cols = Vec<Vec<f64>>;

/// Exact feasibility threshold via simplex (max t s.t. Px ≤ 1, Cx ≥ t).
fn exact_threshold(pack: &[Vec<f64>], cover: &[Vec<f64>]) -> f64 {
    let n = pack.len();
    let mp = pack[0].len();
    let mc = cover[0].len();
    let mut a = Vec::with_capacity(mp + mc);
    for j in 0..mp {
        let mut row: Vec<f64> = pack.iter().map(|col| col[j]).collect();
        row.push(0.0);
        a.push(row);
    }
    for i in 0..mc {
        let mut row: Vec<f64> = cover.iter().map(|col| -col[i]).collect();
        row.push(1.0);
        a.push(row);
    }
    let mut b = vec![1.0; mp];
    b.extend(vec![0.0; mc]);
    let mut c = vec![0.0; n];
    c.push(1.0);
    match simplex_max(&a, &b, &c) {
        LpResult::Optimal { value, .. } => value,
        LpResult::Unbounded => f64::INFINITY,
    }
}

fn main() {
    println!("mixed packing/covering LP (Young'01), eps = 0.1\n");
    println!("{:>28} {:>8} {:>12} {:>10}", "instance", "t*", "answer", "iters");

    // (name, packing columns, covering columns). t* >= 1 means feasible.
    let cases: Vec<(&str, Cols, Cols)> = vec![
        (
            "2 jobs, ample capacity",
            vec![vec![0.4, 0.0], vec![0.0, 0.4]],
            vec![vec![1.0, 0.2], vec![0.2, 1.0]],
        ),
        ("tight but feasible", vec![vec![1.0], vec![1.0]], vec![vec![2.5, 0.0], vec![0.0, 2.5]]),
        (
            "over-subscribed (infeasible)",
            vec![vec![3.0, 1.0], vec![1.0, 3.0]],
            vec![vec![1.0], vec![1.0]],
        ),
    ];

    for (name, pack, cover) in &cases {
        let tstar = exact_threshold(pack, cover);
        let r = mixed_packing_covering(pack, cover, 0.1, 400_000);
        let answer = match &r.outcome {
            MixedOutcome::Feasible { pack_max, cover_min, .. } => {
                assert!(*pack_max <= 1.0 + 1e-9);
                format!("feasible({cover_min:.3})")
            }
            MixedOutcome::Infeasible { .. } => "infeasible".to_string(),
        };
        println!("{:>28} {:>8.3} {:>12} {:>10}", name, tstar, answer, r.iterations);

        // Consistency with the exact threshold (wide margins absorb ε-slack).
        match &r.outcome {
            MixedOutcome::Feasible { .. } => assert!(tstar > 0.7, "{name}: bad feasible call"),
            MixedOutcome::Infeasible { .. } => assert!(tstar < 1.4, "{name}: bad infeasible call"),
        }
    }
    println!("\nall answers consistent with the exact simplex threshold; ok");
}
