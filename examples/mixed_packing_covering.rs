//! Mixed packing/covering — the paper's future-work direction, scalar case.
//!
//! The conclusion of the paper singles out mixed packing/covering SDPs as
//! "an interesting direction for future work"; the LP case is Young's FOCS
//! 2001 result, which this repository implements as a baseline extension.
//! This example solves resource-allocation feasibility problems
//! (`Px ≤ 1` capacity rows, `Cx ≥ 1` demand rows) and cross-checks each
//! answer against the exact simplex threshold `t* = max{t : Px ≤ 1, Cx ≥ t}`.
//!
//! ```text
//! cargo run -p psdp-bench --release --example mixed_packing_covering
//! ```

use psdp_baselines::{mixed_exact_threshold, mixed_packing_covering, MixedOutcome};

/// Column-major constraint block: one inner `Vec` per variable.
type Cols = Vec<Vec<f64>>;

fn main() {
    println!("mixed packing/covering LP (Young'01), eps = 0.1\n");
    println!("{:>28} {:>8} {:>12} {:>10}", "instance", "t*", "answer", "iters");

    // (name, packing columns, covering columns). t* >= 1 means feasible.
    let cases: Vec<(&str, Cols, Cols)> = vec![
        (
            "2 jobs, ample capacity",
            vec![vec![0.4, 0.0], vec![0.0, 0.4]],
            vec![vec![1.0, 0.2], vec![0.2, 1.0]],
        ),
        ("tight but feasible", vec![vec![1.0], vec![1.0]], vec![vec![2.5, 0.0], vec![0.0, 2.5]]),
        (
            "over-subscribed (infeasible)",
            vec![vec![3.0, 1.0], vec![1.0, 3.0]],
            vec![vec![1.0], vec![1.0]],
        ),
    ];

    for (name, pack, cover) in &cases {
        let tstar = mixed_exact_threshold(pack, cover);
        let r = mixed_packing_covering(pack, cover, 0.1, 400_000);
        let answer = match &r.outcome {
            MixedOutcome::Feasible { pack_max, cover_min, .. } => {
                assert!(*pack_max <= 1.0 + 1e-9);
                format!("feasible({cover_min:.3})")
            }
            MixedOutcome::Infeasible { .. } => "infeasible".to_string(),
        };
        println!("{:>28} {:>8.3} {:>12} {:>10}", name, tstar, answer, r.iterations);

        // Consistency with the exact threshold (wide margins absorb ε-slack).
        match &r.outcome {
            MixedOutcome::Feasible { .. } => assert!(tstar > 0.7, "{name}: bad feasible call"),
            MixedOutcome::Infeasible { .. } => assert!(tstar < 1.4, "{name}: bad infeasible call"),
        }
    }
    println!("\nall answers consistent with the exact simplex threshold; ok");
}
