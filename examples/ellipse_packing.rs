//! Figure 1 of the paper: packing ellipses into the unit ball.
//!
//! Solves the exact three-ellipse instance sketched in the paper's Figure 1
//! and renders the optimally-weighted sum `Σ xᵢAᵢ` as ASCII art: the level
//! set `zᵀ(ΣxᵢAᵢ)z = 1` must stay inside the unit circle and touch it where
//! the packing is tight.
//!
//! ```text
//! cargo run -p psdp-bench --release --example ellipse_packing
//! ```

use psdp_core::{ApproxOptions, PackingInstance, Solver};
use psdp_workloads::figure1_instance;

fn main() {
    let mats = figure1_instance();
    println!("Figure 1 instance: A1, A2 axis-aligned; A3 rotated 45°\n");
    for (i, a) in mats.iter().enumerate() {
        let d = a.to_dense();
        println!(
            "A{} = [[{:7.4}, {:7.4}], [{:7.4}, {:7.4}]]",
            i + 1,
            d[(0, 0)],
            d[(0, 1)],
            d[(1, 0)],
            d[(1, 1)]
        );
    }

    let inst = PackingInstance::new(mats).expect("valid");
    let opts = ApproxOptions::practical(0.05);
    let solver = Solver::builder(&inst).options(opts.decision).build().expect("build");
    let report = solver.session().optimize(&opts).expect("solve");
    let x = report.best_dual.as_ref().expect("dual found");
    println!(
        "\npacking optimum ∈ [{:.4}, {:.4}];  x = ({:.4}, {:.4}, {:.4})\n",
        report.value_lower, report.value_upper, x.x[0], x.x[1], x.x[2]
    );

    // Render: '#' = unit circle boundary, '*' = boundary of the packed sum's
    // ellipse z^T (Σ x_i A_i) z = 1, '.' = interior of the packed ellipse.
    let psi = inst.weighted_sum(&x.x);
    let (rows, cols) = (25usize, 50usize);
    println!("packed ellipse (*/.) inside the unit ball (#):");
    for r in 0..rows {
        let mut line = String::with_capacity(cols);
        for c in 0..cols {
            // Map grid to [-1.3, 1.3]^2 (y flipped so +y is up).
            let xx = -1.3 + 2.6 * c as f64 / (cols - 1) as f64;
            let yy = 1.3 - 2.6 * r as f64 / (rows - 1) as f64;
            let rad2 = xx * xx + yy * yy;
            let quad = psi[(0, 0)] * xx * xx + 2.0 * psi[(0, 1)] * xx * yy + psi[(1, 1)] * yy * yy;
            let ch = if (rad2 - 1.0).abs() < 0.09 {
                '#'
            } else if (quad - 1.0).abs() < 0.09 {
                '*'
            } else if quad < 1.0 {
                '.'
            } else {
                ' '
            };
            line.push(ch);
        }
        println!("  {line}");
    }

    // Tightness: λmax(Σ x_i A_i) should be ≈ 1 (the ellipse touches the ball).
    let lam = psdp_linalg::sym_eigen(&psi).expect("eigen").lambda_max();
    println!("\nλmax(Σ xᵢAᵢ) = {lam:.6} (≤ 1 = feasible; ≈ 1 = tight)");
    assert!(lam <= 1.0 + 1e-8);
    assert!(lam > 0.9, "optimal packing should be nearly tight");
    println!("ok");
}
