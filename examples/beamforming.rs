//! Downlink beamforming: the covering-SDP application the paper names as
//! fully inside its packing/covering framework (IPS'10 §2.2).
//!
//! Minimizes total transmit power `Tr Y` subject to per-user SINR covering
//! constraints `(hᵢhᵢᵀ) • Y ≥ γσ²` over synthetic Rayleigh-fading channels,
//! then reports the certified `(1+ε)` bracket, the recovered dual prices,
//! and how the decision-call count tracks `O(log n)`.
//!
//! ```text
//! cargo run -p psdp-bench --release --example beamforming
//! ```

use psdp_core::{solve_covering, ApproxOptions};
use psdp_workloads::{beamforming_sdp, Beamforming};

fn main() {
    let eps = 0.1;
    println!("synthetic downlink beamforming, eps = {eps}\n");
    println!(
        "{:>8} {:>6} {:>10} {:>10} {:>8} {:>6}",
        "antennas", "users", "power_lo", "power_hi", "ratio", "calls"
    );
    for (antennas, users) in [(4usize, 3usize), (6, 5), (8, 6), (8, 10)] {
        let sdp = beamforming_sdp(&Beamforming {
            antennas,
            users,
            sinr_target: 1.0,
            noise: 1.0,
            spread: 4.0,
            seed: 7,
        });
        let report = solve_covering(&sdp, &ApproxOptions::practical(eps)).expect("solve");
        println!(
            "{:>8} {:>6} {:>10.4} {:>10.4} {:>8.4} {:>6}",
            antennas,
            users,
            report.value_lower,
            report.value_upper,
            report.value_upper / report.value_lower,
            report.packing.decision_calls
        );

        // The dual prices lambda_i say how much each user's SINR target
        // costs at the margin; verify they are a feasible dual.
        let lam_sum: f64 = report.lambda.iter().sum();
        assert!(report.lambda.iter().all(|&l| l >= 0.0));
        assert!(lam_sum > 0.0, "nontrivial dual expected");

        // If the primal power matrix was materialized, check covering
        // feasibility directly against the original constraints.
        if let Some(y) = &report.y {
            for (i, (a, &b)) in sdp.constraints.iter().zip(&sdp.rhs).enumerate() {
                let got = a.dot_dense(y);
                assert!(got >= b * (1.0 - 1e-6), "user {i} SINR violated: {got} < {b}");
            }
        }
    }
    println!("\nall SINR constraints satisfied by the returned beamformer; ok");
}
