//! Quickstart: build a small positive SDP, solve its decision and
//! optimization versions, and verify the certificates.
//!
//! ```text
//! cargo run -p psdp-bench --release --example quickstart
//! ```

use psdp_core::{
    decision_psdp, solve_packing, verify_dual, verify_primal, ApproxOptions, DecisionOptions,
    Outcome, PackingInstance,
};
use psdp_sparse::PsdMatrix;

fn main() {
    // A packing SDP over 2x2 matrices with three constraints:
    //   maximize x1 + x2 + x3  s.t.  x1*A1 + x2*A2 + x3*A3 <= I, x >= 0
    // A1, A2 are axis-aligned (diagonal); A3 is rotated 45 degrees.
    let a1 = PsdMatrix::Diagonal(vec![1.0, 0.25]);
    let a2 = PsdMatrix::Diagonal(vec![0.25, 1.0]);
    let a3 = {
        let mut m = psdp_linalg::Mat::zeros(2, 2);
        // 0.5 * (e1+e2)(e1+e2)^T : the rotated ellipse.
        m.rank1_update(0.5, &[1.0, 1.0]);
        PsdMatrix::Dense(m)
    };
    let inst = PackingInstance::new(vec![a1, a2, a3]).expect("valid instance");

    // --- Decision version (Algorithm 3.1): is the packing optimum >= 1? ---
    let opts = DecisionOptions::practical(0.1);
    let res = decision_psdp(&inst, &opts).expect("decision solve");
    println!("decision: {} iterations, exit = {:?}", res.stats.iterations, res.stats.exit);
    match &res.outcome {
        Outcome::Dual(d) => {
            let cert = verify_dual(&inst, d, 1e-8);
            println!(
                "  dual certificate: value = {:.4}, lambda_max(sum x_i A_i) = {:.6} (feasible: {})",
                d.value, cert.lambda_max, cert.feasible
            );
        }
        Outcome::Primal(p) => {
            let cert = verify_primal(&inst, p, 1e-6);
            println!(
                "  primal certificate: min_i A_i.Y = {:.4} (feasible: {})",
                p.min_dot, cert.feasible
            );
        }
    }

    // --- Optimization version (approxPSDP): (1+eps)-approximate OPT. ---
    let report = solve_packing(&inst, &ApproxOptions::practical(0.1)).expect("optimize");
    println!(
        "optimization: OPT in [{:.4}, {:.4}] ({} decision calls, converged: {})",
        report.value_lower, report.value_upper, report.decision_calls, report.converged
    );
    let best = report.best_dual.expect("a feasible dual was found");
    println!(
        "  best feasible x = {:?}",
        best.x.iter().map(|v| (v * 1e4).round() / 1e4).collect::<Vec<_>>()
    );

    assert!(report.converged, "bracket should close at eps = 0.1");
    println!("ok");
}
