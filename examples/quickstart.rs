//! Quickstart: build a small positive SDP, prepare a `Solver` once, then
//! answer decision questions and run the certified optimizer over one
//! `Session` — with an observer watching the iterations.
//!
//! ```text
//! cargo run -p psdp-bench --release --example quickstart
//! ```

use psdp_core::{
    verify_dual, verify_primal, ApproxOptions, DecisionOptions, IterationEvent, Observer,
    ObserverControl, Outcome, PackingInstance, PhaseEvent, Solver,
};
use psdp_sparse::PsdMatrix;

/// A minimal observer: counts iterations and brackets.
#[derive(Default)]
struct Progress {
    iterations: usize,
    brackets: usize,
}

impl Observer for Progress {
    fn on_phase(&mut self, event: &PhaseEvent<'_>) {
        if let PhaseEvent::BracketUpdated { sigma, lo, hi, dual_side } = event {
            self.brackets += 1;
            println!(
                "  bracket {}: sigma = {sigma:.4} -> [{lo:.4}, {hi:.4}] ({})",
                self.brackets,
                if *dual_side { "dual" } else { "primal" }
            );
        }
    }

    fn on_iteration(&mut self, _event: &IterationEvent) -> ObserverControl {
        self.iterations += 1;
        ObserverControl::Continue
    }
}

fn main() {
    // A packing SDP over 2x2 matrices with three constraints:
    //   maximize x1 + x2 + x3  s.t.  x1*A1 + x2*A2 + x3*A3 <= I, x >= 0
    // A1, A2 are axis-aligned (diagonal); A3 is rotated 45 degrees.
    let a1 = PsdMatrix::Diagonal(vec![1.0, 0.25]);
    let a2 = PsdMatrix::Diagonal(vec![0.25, 1.0]);
    let a3 = {
        let mut m = psdp_linalg::Mat::zeros(2, 2);
        // 0.5 * (e1+e2)(e1+e2)^T : the rotated ellipse.
        m.rank1_update(0.5, &[1.0, 1.0]);
        PsdMatrix::Dense(m)
    };
    let inst = PackingInstance::new(vec![a1, a2, a3]).expect("valid instance");

    // Prepare the solver ONCE: validation, engine resolution, constraint
    // factorization all happen here; every solve below reuses it.
    let solver =
        Solver::builder(&inst).options(DecisionOptions::practical(0.1)).build().expect("build");
    let mut session = solver.session();

    // --- Decision version (Algorithm 3.1): is the packing optimum >= 1? ---
    let res = session.solve(1.0).expect("decision solve");
    println!("decision: {} iterations, exit = {:?}", res.stats.iterations, res.stats.exit);
    match &res.outcome {
        Outcome::Dual(d) => {
            let cert = verify_dual(&inst, d, 1e-8);
            println!(
                "  dual certificate: value = {:.4}, lambda_max(sum x_i A_i) = {:.6} (feasible: {})",
                d.value, cert.lambda_max, cert.feasible
            );
        }
        Outcome::Primal(p) => {
            let cert = verify_primal(&inst, p, 1e-6);
            println!(
                "  primal certificate: min_i A_i.Y = {:.4} (feasible: {})",
                p.min_dot, cert.feasible
            );
        }
    }

    // --- Optimization (approxPSDP): the same session runs the certified
    // bisection; brackets warm-start from each other, and an observer
    // streams progress without touching the solver loop. ---
    session.add_observer(Box::new(Progress::default()));
    let report = session.optimize(&ApproxOptions::practical(0.1)).expect("optimize");
    println!(
        "optimization: OPT in [{:.4}, {:.4}] ({} decision calls, {} total iterations, converged: {})",
        report.value_lower,
        report.value_upper,
        report.decision_calls,
        report.total_iterations,
        report.converged
    );
    let best = report.best_dual.expect("a feasible dual was found");
    println!(
        "  best feasible x = {:?}",
        best.x.iter().map(|v| (v * 1e4).round() / 1e4).collect::<Vec<_>>()
    );
    let warm = report.call_stats.iter().filter(|s| s.warm_started).count();
    println!("  warm-started brackets: {warm}/{}", report.decision_calls);

    assert!(report.converged, "bracket should close at eps = 0.1");
    println!("ok");
}
