//! Thread-scaling demo: the same solve at 1..N rayon threads.
//!
//! The paper's result is an NC (polylog-depth) algorithm; on a real machine
//! the observable proxy is wall-clock speedup of the GEMM-heavy Taylor
//! engine as threads grow. Fixed iteration count ⇒ identical numerical work
//! per configuration.
//!
//! ```text
//! cargo run -p psdp-bench --release --example parallel_scaling
//! ```

use psdp_core::{ConstantsMode, DecisionOptions, EngineKind, PackingInstance, Solver};
use psdp_parallel::{available_threads, run_with_threads};
use psdp_workloads::{random_factorized, RandomFactorized};
use std::time::Instant;

fn main() {
    let m = 160;
    let n = 10;
    let iters = 8;
    let mats = random_factorized(&RandomFactorized {
        dim: m,
        n,
        rank: 4,
        nnz_per_col: m / 2,
        width: 1.0,
        seed: 21,
    });
    let inst = PackingInstance::new(mats).expect("valid").scaled(0.4);
    let mut opts = DecisionOptions::practical(0.25).with_engine(EngineKind::Taylor { eps: 0.2 });
    opts.mode = ConstantsMode::Practical { alpha_boost: 1.0, max_iters: iters };
    opts.early_exit = false;
    opts.primal_matrix_dim_limit = 0;

    let avail = available_threads();
    println!("machine has {avail} logical CPUs; m={m}, n={n}, {iters} iterations\n");
    println!("{:>8} {:>10} {:>9} {:>11}", "threads", "wall (s)", "speedup", "efficiency");

    let mut base = f64::NAN;
    for threads in [1usize, 2, 4, 8] {
        if threads > avail {
            break;
        }
        let inst_ref = &inst;
        let opts_ref = &opts;
        // Warm-up, then best-of-two to damp scheduler noise.
        let mut best = f64::INFINITY;
        for rep in 0..3 {
            let w = run_with_threads(threads, move || {
                let t0 = Instant::now();
                let solver = Solver::builder(inst_ref).options(*opts_ref).build().expect("build");
                let _ = solver.session().solve(1.0).expect("solve");
                t0.elapsed().as_secs_f64()
            });
            if rep > 0 {
                best = best.min(w);
            }
        }
        if threads == 1 {
            base = best;
        }
        println!(
            "{:>8} {:>10.4} {:>9.3} {:>11.3}",
            threads,
            best,
            base / best,
            base / best / threads as f64
        );
    }
    println!("\nok");
}
