//! JSON schema snapshots for every machine-readable CLI output.
//!
//! Each `--json` producer (`solve`, `optimize`, `mixed`) and every
//! `serve` response shape (solve / optimize / mixed / error line) has a
//! golden sample under `tests/fixtures/schema/`. The comparison is
//! **structural**: both sides are parsed and flattened to sorted
//! `path: type` lines (`psdp_serve::json::schema_lines`), so numeric
//! jitter in values can never mask a missing, renamed, or retyped field —
//! and a renamed field can never hide behind a value match. `null` acts
//! as a type wildcard (optional fields like `best_dual` legitimately
//! toggle).
//!
//! Regenerate the goldens after an intentional schema change with
//! `PSDP_UPDATE_GOLDENS=1 cargo test -p psdp-bench --test json_schema`
//! and review the diff.

use psdp_cli::args::Args;
use psdp_cli::commands::dispatch;
use psdp_cli::serve::serve_on_input;
use psdp_serve::json::{parse, schema_diff, schema_lines};
use psdp_workloads::{gnp, mixed_edge_cover, random_lp_diagonal};
use std::sync::OnceLock;

fn golden_dir() -> String {
    format!("{}/../../tests/fixtures/schema", env!("CARGO_MANIFEST_DIR"))
}

fn run(v: &[&str]) -> String {
    dispatch(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).expect("command runs")
}

/// Compare `actual` (one JSON document) against the golden sample,
/// regenerating when `PSDP_UPDATE_GOLDENS=1`.
fn assert_schema(name: &str, actual: &str) {
    let path = format!("{}/{name}.json", golden_dir());
    if std::env::var("PSDP_UPDATE_GOLDENS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).expect("schema dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden {path}: {e}; regenerate with PSDP_UPDATE_GOLDENS=1"));
    let want = schema_lines(&parse(golden.trim()).expect("golden parses"));
    let got = schema_lines(&parse(actual.trim()).expect("output parses"));
    let diffs = schema_diff(&want, &got);
    assert!(
        diffs.is_empty(),
        "schema drift in {name}:\n  {}\n(regenerate goldens with PSDP_UPDATE_GOLDENS=1 if intentional)",
        diffs.join("\n  ")
    );
}

/// Deterministic on-disk instances shared by the tests.
struct Fixtures {
    packing: String,
    mixed: String,
}

fn fixtures() -> &'static Fixtures {
    static FIX: OnceLock<Fixtures> = OnceLock::new();
    FIX.get_or_init(|| {
        let dir = std::env::temp_dir().join("psdp-json-schema");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let packing = dir.join("schema_pack.psdp");
        let inst = psdp_core::PackingInstance::new(random_lp_diagonal(6, 4, 0.6, 3)).unwrap();
        std::fs::write(&packing, psdp_core::write_instance(&inst)).unwrap();
        let mixed = dir.join("schema_mixed.psdp");
        let m = mixed_edge_cover(&gnp(8, 0.6, 3), 0.5);
        std::fs::write(&mixed, psdp_core::write_mixed_instance(&m)).unwrap();
        Fixtures {
            packing: packing.to_string_lossy().into_owned(),
            mixed: mixed.to_string_lossy().into_owned(),
        }
    })
}

#[test]
fn solve_json_schema() {
    let out = run(&["solve", &fixtures().packing, "--eps", "0.2", "--json"]);
    assert_schema("solve", &out);
}

#[test]
fn optimize_json_schema() {
    let out = run(&["optimize", &fixtures().packing, "--eps", "0.15", "--json"]);
    assert_schema("optimize", &out);
}

#[test]
fn mixed_json_schema() {
    let out = run(&["mixed", &fixtures().mixed, "--eps", "0.2", "--json"]);
    assert_schema("mixed", &out);
}

#[test]
fn serve_response_schemas() {
    let f = fixtures();
    let input = format!(
        "{{\"id\":\"s1\",\"command\":\"solve\",\"file\":{p},\"threshold\":1.0,\"eps\":0.2}}\n\
         {{\"id\":\"o1\",\"command\":\"optimize\",\"file\":{p},\"eps\":0.15}}\n\
         {{\"id\":\"m1\",\"command\":\"mixed\",\"file\":{m},\"eps\":0.2}}\n\
         {{\"id\":\"bad\",\"command\":\"solve\",\"instance\":\"psdp 1 nope\"}}\n",
        p = psdp_cli::jsonfmt::json_str(&f.packing),
        m = psdp_cli::jsonfmt::json_str(&f.mixed),
    );
    let args = Args::parse(&["serve".to_string()]).unwrap();
    let out = serve_on_input(&args, &input).expect("serve runs");
    let lines: Vec<&str> = out.stdout.lines().collect();
    assert_eq!(lines.len(), 4, "{}", out.stdout);
    assert_schema("serve_solve", lines[0]);
    assert_schema("serve_optimize", lines[1]);
    assert_schema("serve_mixed", lines[2]);
    assert_schema("serve_error", lines[3]);
}

/// The typed `overloaded` line is rendered by `jsonfmt::overloaded_line`
/// (never hand-rolled at a shed site), so one golden pins the schema for
/// every shed path: a full shard queue, the adaptive p99 policy, and the
/// per-client in-flight cap (`shard` null — the request was never
/// routed). The golden carries the null variant, which the structural
/// diff treats as a wildcard, so both variants must match it.
#[test]
fn serve_overloaded_schema() {
    // Null-shard variant last: under PSDP_UPDATE_GOLDENS the final write
    // becomes the golden, and only a null in the *golden* wildcards the
    // routed variant's number.
    assert_schema("serve_overloaded", &psdp_cli::jsonfmt::overloaded_line("r1", Some(3)));
    assert_schema("serve_overloaded", &psdp_cli::jsonfmt::overloaded_line("r1", None));
}

/// The serve schemas must be supersets of the one-shot schemas: same
/// payload fields plus `id` and `serve` (and `wall_ms` forced to null) —
/// pinned here structurally so the two paths cannot drift apart.
#[test]
fn serve_reuses_one_shot_schemas() {
    let f = fixtures();
    let one_shot = run(&["solve", &fixtures().packing, "--eps", "0.2", "--json"]);
    let input = format!(
        "{{\"id\":\"s1\",\"command\":\"solve\",\"file\":{p},\"threshold\":1.0,\"eps\":0.2}}\n",
        p = psdp_cli::jsonfmt::json_str(&f.packing),
    );
    let args = Args::parse(&["serve".to_string()]).unwrap();
    let serve_line = serve_on_input(&args, &input)
        .expect("serve runs")
        .stdout
        .lines()
        .next()
        .unwrap()
        .to_string();
    let base = schema_lines(&parse(one_shot.trim()).unwrap());
    let serve = schema_lines(&parse(serve_line.trim()).unwrap());
    for line in &base {
        // Every one-shot path must exist in the serve response (types may
        // differ only through the null wildcard, e.g. wall_ms).
        let path = line.rsplit_once(": ").unwrap().0;
        assert!(
            serve.iter().any(|l| l.rsplit_once(": ").unwrap().0 == path),
            "serve solve response lost path {path}"
        );
    }
    assert!(serve.iter().any(|l| l.starts_with("$.id:")), "serve response missing id");
    assert!(serve.iter().any(|l| l.starts_with("$.serve:")), "serve response missing serve stats");
}
