//! Streaming-service suite: the malformed-request corpus, backpressure
//! invariants, and snapshot robustness (DESIGN.md §13).
//!
//! Three guarantees for `psdp serve --listen`:
//!
//! 1. **Malformed lines error in place, never kill the stream.** Every
//!    admission-stage error path has a checked-in fixture under
//!    `tests/fixtures/serve_corpus/`; both serve modes must answer each
//!    bad line with a typed error response at its position and keep
//!    serving the requests after it — byte-identically to each other.
//! 2. **Backpressure is typed, not buffered.** A tiny queue may shed
//!    load, but every admitted request is answered exactly once, either
//!    with its response or with a typed `overloaded` line.
//! 3. **Snapshots are robust.** Write→load→write is a byte fixpoint for
//!    any cache the service produces, and arbitrarily corrupted snapshot
//!    bytes load as a clean error (cold start), never a panic. Saves are
//!    atomic (tmp + rename): a stale torn `<path>.tmp` never corrupts
//!    the next save, and with `--snapshot-keep` ≥ 2 a torn live file
//!    warm-loads from the rotated generation instead of starting cold.

use proptest::prelude::*;
use psdp_core::DecisionOptions;
use psdp_serve::{Service, ServiceOptions, StreamItem};
use std::sync::Arc;

fn corpus_dir() -> String {
    format!("{}/../../tests/fixtures/serve_corpus", env!("CARGO_MANIFEST_DIR"))
}

fn run_mode(extra: &[&str], input: &str, listen: bool) -> (String, String) {
    let mut argv: Vec<String> = vec!["serve".to_string()];
    if listen {
        argv.push("--listen".to_string());
    }
    argv.extend(extra.iter().map(|s| s.to_string()));
    let args = psdp_cli::args::Args::parse(&argv).expect("argv parses");
    let run = if listen {
        psdp_cli::serve::serve_listen_on_input(&args, input).expect("listen runs")
    } else {
        psdp_cli::serve::serve_on_input(&args, input).expect("serve runs")
    };
    (run.stdout, run.summary)
}

/// The corpus, concatenated in file order, with the expected
/// error-or-response flag for each line (`true` = must be an error).
fn corpus_stream() -> (String, Vec<bool>) {
    let dir = corpus_dir();
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {dir}: {e}"))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 12, "corpus suspiciously small: {} files", paths.len());
    let mut input = String::new();
    let mut expect_error = Vec::new();
    for path in &paths {
        let name = path.file_name().expect("file name").to_string_lossy().to_string();
        let text = std::fs::read_to_string(path).expect("fixture readable");
        let lines = text.lines().count();
        input.push_str(&text);
        match name.as_str() {
            // First occurrence of the duplicate id executes, the repeat
            // errors.
            "06_duplicate_id.jsonl" => expect_error.extend([false, true]),
            n if n.starts_with("11_") || n.starts_with("12_") => {
                expect_error.extend(std::iter::repeat_n(false, lines));
            }
            _ => expect_error.extend(std::iter::repeat_n(true, lines)),
        }
    }
    (input, expect_error)
}

/// Every malformed fixture gets a typed error at its stream position;
/// the good requests around them are answered normally — in both serve
/// modes, with identical bytes.
#[test]
fn malformed_corpus_errors_in_place_in_both_modes() {
    let (input, expect_error) = corpus_stream();
    let flags = ["--max-line-bytes", "1024"];
    let (one_shot, _) = run_mode(&flags, &input, false);
    let (listen, summary) = run_mode(&flags, &input, true);
    assert_eq!(one_shot, listen, "serve modes disagree on the corpus");
    let lines: Vec<&str> = listen.lines().collect();
    assert_eq!(lines.len(), expect_error.len(), "one response per input line:\n{listen}");
    for (i, (line, expect_err)) in lines.iter().zip(&expect_error).enumerate() {
        let is_err = line.contains("\"error\":");
        assert_eq!(is_err, *expect_err, "line {i}: {line}");
    }
    // Spot-check the typed reasons.
    let joined = lines.join("\n");
    assert!(joined.contains("exceeds --max-line-bytes"), "{joined}");
    assert!(joined.contains("duplicate request id"), "{joined}");
    assert!(joined.contains("\"id\":\"ok-solve\",\"command\":\"solve\""), "{joined}");
    assert!(joined.contains("\"id\":\"ok-mixed\",\"command\":\"mixed\""), "{joined}");
    assert!(summary.contains("listen:"), "{summary}");
}

/// A deliberately tiny queue may answer `overloaded`, but every request
/// is answered exactly once, in submission order, and overload lines are
/// typed JSONL — never silence, never unbounded buffering.
#[test]
fn backpressure_sheds_load_with_typed_lines() {
    let batch = psdp_workloads::mixed_request_stream(&psdp_workloads::MixedStreamSpec {
        base: psdp_workloads::RequestStreamSpec {
            pool: 2,
            requests: 40,
            dim: 8,
            n: 5,
            ..Default::default()
        },
        mixed_pool: 0,
        mixed_share: 0.0,
        ..Default::default()
    });
    let input = psdp_workloads::stream_jsonl(&batch);
    let (out, summary) = run_mode(&["--shards", "1", "--queue-cap", "1"], &input, true);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), batch.requests.len(), "every request answered once");
    for (line, r) in lines.iter().zip(&batch.requests) {
        let expected_id = format!("\"id\":\"{}\"", r.id);
        assert!(line.contains(&expected_id), "order broken: wanted {expected_id} in {line}");
        let answered = line.contains("\"command\":") || line.contains("\"overloaded\":true");
        assert!(answered, "line neither response nor typed overload: {line}");
    }
    assert!(summary.contains("listen: 40 requests"), "{summary}");
}

fn tiny_instance(seed: u64) -> Arc<psdp_core::PackingInstance> {
    let (instances, _) = psdp_workloads::request_stream(&psdp_workloads::RequestStreamSpec {
        pool: 1,
        requests: 1,
        dim: 6,
        n: 4,
        seed,
        ..Default::default()
    });
    Arc::new(instances.into_iter().next().expect("pool of one"))
}

/// A populated service cache for snapshot property tests.
fn populated_service(pool: usize, seed: u64) -> Service {
    let mut service = Service::new(ServiceOptions { shards: 2, ..Default::default() });
    let items = (0..pool).map(|k| StreamItem::Execute {
        request: psdp_serve::ServeRequest::decision(
            format!("p{k}"),
            tiny_instance(seed.wrapping_add(k as u64)),
            1.0,
            DecisionOptions::practical(0.2),
        ),
        ctx: (),
    });
    let report = service.run_stream(items.collect::<Vec<_>>().into_iter(), |_, _| {});
    assert_eq!(report.errors, 0);
    service
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Write→load→write is a byte fixpoint for caches the service builds,
    /// across pool compositions and reload shard counts.
    #[test]
    fn snapshot_write_load_write_fixpoint(pool in 1usize..4, seed in 0u64..200, shards in 1usize..6) {
        let service = populated_service(pool, seed);
        let snap = service.snapshot_string();
        let mut reloaded = Service::new(ServiceOptions { shards, ..Default::default() });
        let n = reloaded.load_snapshot(&snap).expect("own snapshot loads");
        prop_assert_eq!(n, service.cached_fingerprints());
        prop_assert_eq!(reloaded.snapshot_string(), snap);
    }

    /// Arbitrarily corrupted snapshot bytes never panic the loader: they
    /// load cleanly or error cleanly, and the service stays cold-start
    /// usable either way.
    #[test]
    fn corrupted_snapshots_never_panic(cut in 0usize..10_000, flip in 0usize..10_000, byte in 0u32..256) {
        let service = populated_service(2, 11);
        let snap = service.snapshot_string();
        let mut bytes = snap.into_bytes();
        bytes.truncate(cut % (bytes.len() + 1));
        if !bytes.is_empty() {
            let i = flip % bytes.len();
            bytes[i] = byte as u8;
        }
        let corrupted = String::from_utf8_lossy(&bytes).into_owned();
        let mut fresh = Service::new(ServiceOptions::default());
        let _ = fresh.load_snapshot(&corrupted); // Ok or Err, never panic.
        // Whatever the loader decided, the service still serves.
        let item = StreamItem::Execute {
            request: psdp_serve::ServeRequest::decision(
                "after".to_string(),
                tiny_instance(999),
                1.0,
                DecisionOptions::practical(0.2),
            ),
            ctx: (),
        };
        let mut answered = 0usize;
        let report = fresh.run_stream(std::iter::once(item), |_, _| answered += 1);
        prop_assert_eq!(report.errors, 0);
        prop_assert_eq!(answered, 1);
    }

    /// A stale `<path>.tmp` full of arbitrary bytes — what a crash
    /// mid-save leaves behind — never corrupts the next save:
    /// `save_to_path` rewrites the tmp and renames it into place, so the
    /// live file holds exactly the new snapshot and the tmp slot is
    /// consumed. A torn live file afterwards warm-loads from the rotated
    /// generation when `--snapshot-keep` ≥ 2, and degrades to a clean
    /// cold start when there is no fallback.
    #[test]
    fn torn_tmp_files_never_corrupt_saves(
        garbage in proptest::collection::vec(0u32..256, 0..64),
        keep in 1usize..4,
        seed in 0u64..100,
    ) {
        let garbage: Vec<u8> = garbage.iter().map(|&b| b as u8).collect();
        let service = populated_service(1, seed);
        let snap = service.snapshot_string();
        let path = std::env::temp_dir()
            .join(format!("psdp-torn-{}-{seed}-{keep}.snap", std::process::id()));
        let path_s = path.to_string_lossy().into_owned();
        let tmp = format!("{path_s}.tmp");
        std::fs::write(&tmp, &garbage).expect("tmp write");
        psdp_serve::snapshot::save_to_path(&path_s, &snap, keep).expect("save succeeds");
        prop_assert_eq!(std::fs::read_to_string(&path_s).expect("live readable"), snap.clone());
        prop_assert!(!std::path::Path::new(&tmp).exists(), "tmp must be consumed by the rename");
        // Save again (rotating the intact file into `.1`), then tear the
        // live file mid-write.
        psdp_serve::snapshot::save_to_path(&path_s, &snap, keep).expect("second save succeeds");
        std::fs::write(&path_s, "psdp snapshot v1\nentries 1\ngar").expect("tear");
        let keep_s = keep.to_string();
        let (_, summary) =
            run_mode(&["--snapshot", &path_s, "--snapshot-keep", &keep_s], "", true);
        for g in psdp_serve::snapshot::generation_paths(&path_s, keep) {
            let _ = std::fs::remove_file(&g);
        }
        if keep >= 2 {
            prop_assert!(
                summary.contains(&format!("warm-loaded 1 fingerprints from {path_s}.1")),
                "wanted generation fallback, got: {}", summary
            );
        } else {
            prop_assert!(summary.contains("starting cold"), "{}", summary);
        }
    }
}
