//! Warm-start equivalence: the session bisection must return the same
//! certified bracket `[lo, hi]` — bitwise — whether brackets are
//! warm-started (iterate continuation + trajectory replay) or run cold.
//! See `psdp_core::solver` for why this holds by construction: bracket
//! moves are quantized strong certificates, and every weak-outcome
//! fallback is cold-deterministic.

use proptest::prelude::*;
use psdp_core::{ApproxOptions, PackingInstance, Solver};
use psdp_test_support::{
    arb_factorized_instance, arb_sparse_graph_instance, factorized_instance, FactorizedSpec,
};

/// Warm and cold bisections over the same prepared solver must report the
/// same certified bracket, call count, and convergence flag.
fn assert_warm_equals_cold(inst: &PackingInstance, eps: f64) {
    let opts = ApproxOptions::serving(eps);
    let solver = Solver::builder(inst).options(opts.decision).build().expect("build");

    let cold = solver.session().with_warm_start(false).optimize(&opts).expect("cold");
    let warm = solver.session().with_warm_start(true).optimize(&opts).expect("warm");

    prop_assert_eq!(
        cold.value_lower.to_bits(),
        warm.value_lower.to_bits(),
        "lower bounds diverged: cold {} vs warm {}",
        cold.value_lower,
        warm.value_lower
    );
    prop_assert_eq!(
        cold.value_upper.to_bits(),
        warm.value_upper.to_bits(),
        "upper bounds diverged: cold {} vs warm {}",
        cold.value_upper,
        warm.value_upper
    );
    prop_assert_eq!(cold.decision_calls, warm.decision_calls);
    prop_assert_eq!(cold.converged, warm.converged);
    // And both brackets are genuinely certified orderings.
    prop_assert!(warm.value_lower > 0.0 && warm.value_upper >= warm.value_lower);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random factorized instances: warm ≡ cold, bitwise.
    #[test]
    fn warm_bisection_matches_cold_on_factorized(inst in arb_factorized_instance()) {
        assert_warm_equals_cold(&inst, 0.15);
    }

    /// Random sparse (CSR edge-Laplacian) instances: warm ≡ cold, bitwise.
    #[test]
    fn warm_bisection_matches_cold_on_sparse(inst in arb_sparse_graph_instance()) {
        assert_warm_equals_cold(&inst, 0.15);
    }
}

/// The warm run must not just match — it must also do less live work on an
/// instance where the bisection runs several dual-side brackets.
#[test]
fn warm_bisection_saves_iterations() {
    let inst = factorized_instance(&FactorizedSpec::new(8, 6, 9).with_scale(1.0));
    let opts = ApproxOptions::serving(0.1);
    let solver = Solver::builder(&inst).options(opts.decision).build().expect("build");
    let cold = solver.session().with_warm_start(false).optimize(&opts).expect("cold");
    let warm = solver.session().with_warm_start(true).optimize(&opts).expect("warm");
    assert_eq!(cold.value_lower.to_bits(), warm.value_lower.to_bits());
    assert_eq!(cold.value_upper.to_bits(), warm.value_upper.to_bits());
    assert!(
        warm.total_iterations < cold.total_iterations,
        "warm {} vs cold {}",
        warm.total_iterations,
        cold.total_iterations
    );
    assert!(warm.call_stats.iter().any(|s| s.warm_started), "no bracket warm-started");
}
