//! Warm-start equivalence: the session bisection must return the same
//! certified bracket `[lo, hi]` — bitwise — whether brackets are
//! warm-started (iterate continuation + trajectory replay) or run cold.
//! See `psdp_core::solver` for why this holds by construction: bracket
//! moves are quantized strong certificates, and every weak-outcome
//! fallback is cold-deterministic.

use proptest::prelude::*;
use psdp_core::{ApproxOptions, PackingInstance, Solver};
use psdp_sparse::PsdMatrix;
use psdp_workloads::{edge_packing_sparse, gnp, random_factorized, RandomFactorized};

/// Random factorized instance (dense-ish storage, rank-2 constraints).
fn factorized_instance() -> impl Strategy<Value = PackingInstance> {
    (4usize..9, 3usize..7, 0u64..1000).prop_map(|(m, n, seed)| {
        PackingInstance::new(random_factorized(&RandomFactorized {
            dim: m,
            n,
            rank: 2,
            nnz_per_col: 3,
            width: 1.5,
            seed,
        }))
        .expect("valid instance")
    })
}

/// Random sparse instance: edge Laplacians of a G(n, p) graph in CSR form.
fn sparse_instance() -> impl Strategy<Value = PackingInstance> {
    (6usize..12, 0u64..1000).prop_map(|(v, seed)| {
        let graph = gnp(v, 0.5, seed);
        let mats: Vec<PsdMatrix> = edge_packing_sparse(&graph);
        if mats.is_empty() {
            // Degenerate empty graph: fall back to a diagonal instance.
            PackingInstance::new(vec![PsdMatrix::Diagonal(vec![1.0; v])]).expect("valid")
        } else {
            PackingInstance::new(mats).expect("valid instance")
        }
    })
}

/// Warm and cold bisections over the same prepared solver must report the
/// same certified bracket, call count, and convergence flag.
fn assert_warm_equals_cold(inst: &PackingInstance, eps: f64) {
    let opts = ApproxOptions::serving(eps);
    let solver = Solver::builder(inst).options(opts.decision).build().expect("build");

    let cold = solver.session().with_warm_start(false).optimize(&opts).expect("cold");
    let warm = solver.session().with_warm_start(true).optimize(&opts).expect("warm");

    prop_assert_eq!(
        cold.value_lower.to_bits(),
        warm.value_lower.to_bits(),
        "lower bounds diverged: cold {} vs warm {}",
        cold.value_lower,
        warm.value_lower
    );
    prop_assert_eq!(
        cold.value_upper.to_bits(),
        warm.value_upper.to_bits(),
        "upper bounds diverged: cold {} vs warm {}",
        cold.value_upper,
        warm.value_upper
    );
    prop_assert_eq!(cold.decision_calls, warm.decision_calls);
    prop_assert_eq!(cold.converged, warm.converged);
    // And both brackets are genuinely certified orderings.
    prop_assert!(warm.value_lower > 0.0 && warm.value_upper >= warm.value_lower);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random factorized instances: warm ≡ cold, bitwise.
    #[test]
    fn warm_bisection_matches_cold_on_factorized(inst in factorized_instance()) {
        assert_warm_equals_cold(&inst, 0.15);
    }

    /// Random sparse (CSR edge-Laplacian) instances: warm ≡ cold, bitwise.
    #[test]
    fn warm_bisection_matches_cold_on_sparse(inst in sparse_instance()) {
        assert_warm_equals_cold(&inst, 0.15);
    }
}

/// The warm run must not just match — it must also do less live work on an
/// instance where the bisection runs several dual-side brackets.
#[test]
fn warm_bisection_saves_iterations() {
    let inst = PackingInstance::new(random_factorized(&RandomFactorized {
        dim: 8,
        n: 6,
        rank: 2,
        nnz_per_col: 3,
        width: 1.0,
        seed: 9,
    }))
    .expect("valid");
    let opts = ApproxOptions::serving(0.1);
    let solver = Solver::builder(&inst).options(opts.decision).build().expect("build");
    let cold = solver.session().with_warm_start(false).optimize(&opts).expect("cold");
    let warm = solver.session().with_warm_start(true).optimize(&opts).expect("warm");
    assert_eq!(cold.value_lower.to_bits(), warm.value_lower.to_bits());
    assert_eq!(cold.value_upper.to_bits(), warm.value_upper.to_bits());
    assert!(
        warm.total_iterations < cold.total_iterations,
        "warm {} vs cold {}",
        warm.total_iterations,
        cold.total_iterations
    );
    assert!(warm.call_stats.iter().any(|s| s.warm_started), "no bracket warm-started");
}
