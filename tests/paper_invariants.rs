//! The paper's named claims, checked as executable invariants:
//!
//! * Claim 3.3 — `Ψ(0) = Σ xᵢ⁰Aᵢ ⪯ I`,
//! * Claim 3.5 — `‖x‖₁ ≤ (1+ε)K` at exit,
//! * Lemma 3.2 — `Ψ(t) ⪯ (1+10ε)K·I` throughout (checked at exit),
//! * Lemma 3.6 — primal exits satisfy every covering constraint,
//! * Theorem 2.1 — the MMW regret bound on adversarial gain sequences,
//! * Lemma 4.2 — the Taylor sandwich `(1−ε)exp(B) ⪯ p(B) ⪯ exp(B)`,
//! * Lemma 2.2 — trace pruning keeps every small-trace constraint,
//! * witness directions — every certificate a report carries certifies
//!   *at least* the bound the report states, re-verified through
//!   `psdp_core::verify` (packing, covering, and mixed sides alike).

use psdp_core::{
    decision_psdp, solve_covering, solve_mixed, trace_prune, verify_dual, verify_mixed_feasible,
    verify_mixed_infeasible, verify_primal, ApproxOptions, DecisionOptions, MixedApproxOptions,
    Outcome, PackingInstance, PositiveSdp,
};
use psdp_linalg::{sym_eigen, Mat};
use psdp_mmw::{paper_constants, MmwGame};
use psdp_sparse::PsdMatrix;
use psdp_test_support::{factorized_instance, FactorizedSpec};
use psdp_workloads::{gnp, mixed_edge_cover, mixed_lp_diagonal};

fn instance(n: usize, seed: u64) -> PackingInstance {
    factorized_instance(&FactorizedSpec::new(8, n, seed))
}

/// Claim 3.3: the starting point respects the packing constraint.
#[test]
fn claim_3_3_initial_psi_below_identity() {
    for seed in [1u64, 2, 3] {
        let inst = instance(6, seed);
        let x0: Vec<f64> =
            inst.mats().iter().map(|a| 1.0 / (inst.n() as f64 * a.trace())).collect();
        let psi0 = inst.weighted_sum(&x0);
        let lam = sym_eigen(&psi0).unwrap().lambda_max();
        assert!(lam <= 1.0 + 1e-10, "λmax(Ψ⁰) = {lam} > 1");
    }
}

/// Claim 3.5 and Lemma 3.2 at exit under strict constants.
#[test]
fn claim_3_5_and_lemma_3_2_strict_mode() {
    let eps = 0.3;
    for seed in [1u64, 4] {
        let inst = instance(5, seed);
        let res = decision_psdp(&inst, &DecisionOptions::strict(eps)).unwrap();
        let k = res.stats.k_threshold;
        // Claim 3.5: no big overshoot.
        assert!(
            res.stats.final_norm1 <= (1.0 + eps) * k + 1e-9,
            "‖x‖₁ = {} > (1+ε)K = {}",
            res.stats.final_norm1,
            (1.0 + eps) * k
        );
        // Lemma 3.2 (via the κ telemetry: the certified bound passed to the
        // engine never exceeded the lemma bound meaningfully).
        let lemma = (1.0 + 10.0 * eps) * k;
        assert!(
            res.stats.kappa_max <= lemma * 1.02,
            "κ = {} exceeded the Lemma 3.2 bound {lemma}",
            res.stats.kappa_max
        );
        // And the dual, when returned, uses the paper scaling.
        if let Outcome::Dual(d) = &res.outcome {
            assert!((d.feasibility_scale - (1.0 + 10.0 * eps) * k).abs() < 1e-9);
            let lam = sym_eigen(&inst.weighted_sum(&d.x)).unwrap().lambda_max();
            assert!(lam <= 1.0 + 1e-8, "strict dual infeasible: {lam}");
        }
    }
}

/// Lemma 3.6: when the loop exhausts its budget, the averaged primal
/// satisfies every constraint. (Forced by an infeasible instance.)
#[test]
fn lemma_3_6_primal_feasibility() {
    // OPT = 1/3 < 1: the decision procedure must return a primal side, and
    // its averaged Y must cover every constraint.
    let inst = PackingInstance::new(vec![
        PsdMatrix::Diagonal(vec![3.0, 3.0]),
        PsdMatrix::Diagonal(vec![3.0, 0.0]),
    ])
    .unwrap();
    let res = decision_psdp(&inst, &DecisionOptions::practical(0.2)).unwrap();
    let p = res.outcome.primal().expect("primal expected on infeasible instance");
    assert!(p.min_dot >= 1.0 - 1e-6, "min dot {}", p.min_dot);
    for &d in &p.constraint_dots {
        assert!(d >= 1.0 - 1e-6);
    }
}

/// Theorem 2.1 under a gain sequence chosen by the solver's own dynamics:
/// replay the decision run's gains through the standalone MMW game.
#[test]
fn theorem_2_1_regret_on_solver_like_gains() {
    // Adversary alternating projectors plus a drifting mixture — a sequence
    // shaped like the solver's (PSD, ⪯ I, non-commuting).
    let dim = 4;
    let mut game = MmwGame::new(dim, 0.3);
    for t in 0..80 {
        let mut g = Mat::zeros(dim, dim);
        let i = t % dim;
        let j = (t * 7 + 1) % dim;
        let mut v = vec![0.0; dim];
        v[i] = (0.6_f64).sqrt();
        v[j] = (0.4_f64).sqrt();
        g.rank1_update(1.0, &v);
        game.play(&g).unwrap();
    }
    let (lhs, rhs) = game.regret_bound_sides().unwrap();
    assert!(lhs >= rhs - 1e-9, "regret bound violated: {lhs} < {rhs}");
}

/// Lemma 4.2 sandwich on PSD matrices at the κ the solver actually sees
/// (`(1+10ε)K` for small instances).
#[test]
fn lemma_4_2_sandwich_at_solver_kappa() {
    let eps = 0.25;
    let pc = paper_constants(6, eps);
    let kappa = ((1.0 + 10.0 * eps) * pc.k_threshold).min(24.0);
    // Random PSD with that norm.
    let mut b = Mat::from_fn(6, 6, |i, j| ((i * 5 + j * 3) % 7) as f64 * 0.1);
    b.symmetrize();
    let shift = -sym_eigen(&b).unwrap().lambda_min().min(0.0) + 0.05;
    b.add_diag(shift);
    let lam = sym_eigen(&b).unwrap().lambda_max();
    b.scale(kappa / lam);

    let k = psdp_linalg::taylor_degree(kappa, eps);
    let p = psdp_linalg::poly::exp_taylor_dense(&b, k);
    let e = psdp_linalg::expm(&b).unwrap();

    let upper = {
        let mut d = e.sub(&p);
        d.symmetrize();
        sym_eigen(&d).unwrap().lambda_min()
    };
    assert!(upper > -1e-7 * e.max_abs(), "p(B) ⪯ exp(B) violated: {upper}");
    let lower = {
        let mut d = p.sub(&e.scaled(1.0 - eps));
        d.symmetrize();
        sym_eigen(&d).unwrap().lambda_min()
    };
    assert!(lower > -1e-7 * e.max_abs(), "(1−ε)exp(B) ⪯ p(B) violated: {lower}");
}

/// Witness direction, covering side: a `CoveringReport`'s certificates
/// must certify at least the bounds the report states, re-checked through
/// `verify.rs` — the dual multipliers re-verify on the normalized packing
/// instance at (at least) `value_lower`, and the primal witness re-verifies
/// at (at least) the strength backing `value_upper`. Mirrors the
/// packing-side checks in `tests/end_to_end.rs`.
#[test]
fn covering_report_certificates_certify_reported_bounds() {
    // Diagonal covering SDP with a known optimum (see approx.rs tests):
    // min C•Y s.t. A•Y ≥ 2 with C = diag(4,1), A = diag(1,1) ⇒ OPT = 2.
    let sdp = PositiveSdp {
        objective: PsdMatrix::Diagonal(vec![4.0, 1.0]),
        constraints: vec![PsdMatrix::Diagonal(vec![1.0, 1.0])],
        rhs: vec![2.0],
    };
    let r = solve_covering(&sdp, &ApproxOptions::practical(0.1)).unwrap();
    assert!(r.value_lower <= 2.0 + 1e-6 && r.value_upper >= 2.0 - 1e-6);

    // Lower bound: the packing report's best dual is a feasible packing
    // vector whose value is at least the reported lower bound.
    let d = r.packing.best_dual.as_ref().expect("dual witness");
    let nz = psdp_core::normalize(&sdp).unwrap();
    let cert = verify_dual(&nz.instance, d, 1e-8);
    assert!(cert.feasible, "covering dual failed verify: λmax {}", cert.lambda_max);
    assert!(
        cert.value >= r.value_lower - 1e-9,
        "dual witness value {} certifies less than reported lower bound {}",
        cert.value,
        r.value_lower
    );

    // Upper bound: the primal witness at (σ, p) certifies OPT ≤ σ/min_dot
    // (it is the *latest* witness, not necessarily the tightest, so the
    // invariant linking it to the report is bracket consistency: the
    // certified lower bound can never exceed any certified upper bound).
    // (`feasible` would demand min_dot ≥ 1 — feasibility at threshold 1 of
    // the σ-scaled instance — but a weak witness with min_dot < 1 still
    // certifies OPT ≤ σ/min_dot; check the matrix structure and the bound
    // direction instead.)
    let (sigma, p) = r.packing.upper_witness.as_ref().expect("primal witness");
    let cert = verify_primal(&nz.instance, p, 1e-6);
    if cert.matrix_checked {
        assert!((cert.trace - 1.0).abs() <= 1e-6, "witness trace {} ≠ 1", cert.trace);
        assert!(cert.lambda_min >= -1e-6, "witness not PSD: λmin {}", cert.lambda_min);
    }
    assert!(cert.min_dot > 0.0, "degenerate witness: min_dot {}", cert.min_dot);
    let witness_bound = sigma / cert.min_dot.max(1e-12);
    assert!(
        r.value_lower <= witness_bound * (1.0 + 1e-9),
        "certified lower bound {} exceeds what the covering witness allows ({witness_bound})",
        r.value_lower
    );
}

/// Witness direction, mixed side: a `MixedReport`'s feasible point must
/// re-verify at the reported `threshold_lower`, and its infeasibility
/// witness must refute no more than the reported `threshold_upper` —
/// i.e. each certificate certifies *at least* the bound the report
/// states, on both the diagonal and the sparse graph families.
#[test]
fn mixed_report_certificates_certify_reported_bounds() {
    let instances = [
        ("mixed-lp", mixed_lp_diagonal(5, 4, 6, 0.6, 2)),
        ("edge-cover", mixed_edge_cover(&gnp(8, 0.6, 4), 0.5)),
    ];
    for (name, inst) in &instances {
        let r = solve_mixed(inst, &MixedApproxOptions::practical(0.12)).unwrap();
        assert!(r.threshold_lower > 0.0, "{name}: degenerate bracket");

        let p = r.best_point.as_ref().expect("feasible witness");
        let cert = verify_mixed_feasible(inst, p, r.threshold_lower * (1.0 - 1e-9), 1e-7);
        assert!(cert.feasible, "{name}: feasible point failed verify: {cert:?}");
        assert!(
            cert.cover_lambda_min >= r.threshold_lower * (1.0 - 1e-9),
            "{name}: witness coverage {} certifies less than reported lower bound {}",
            cert.cover_lambda_min,
            r.threshold_lower
        );
        assert!(cert.pack_lambda_max <= 1.0 + 1e-7, "{name}: packing side violated");

        if let Some(w) = &r.infeasibility_witness {
            let cert = verify_mixed_infeasible(inst, w, 1e-7);
            assert!(cert.valid, "{name}: infeasibility witness failed verify: {cert:?}");
            // The report keeps the *tightest* witness, and every hi update
            // adds nonnegative pruning slack on top of its certificate, so
            // the reported upper bound is never tighter than the
            // re-measured witness supports.
            assert!(
                r.threshold_upper >= cert.refuted_threshold * (1.0 - 1e-6) - 1e-9,
                "{name}: reported upper bound {} tighter than witness supports ({})",
                r.threshold_upper,
                cert.refuted_threshold
            );
        }
    }
}

/// Lemma 2.2: pruning never drops a constraint with trace ≤ n³, and the
/// pruned instance is still valid.
#[test]
fn lemma_2_2_trace_pruning() {
    let mut mats = vec![PsdMatrix::Diagonal(vec![1.0, 1.0]), PsdMatrix::Diagonal(vec![0.5, 0.5])];
    // A pathological constraint with enormous trace.
    mats.push(PsdMatrix::Diagonal(vec![1e6, 1e6]));
    let inst = PackingInstance::new(mats).unwrap();
    let (keep, dropped) = trace_prune(&inst);
    assert_eq!(keep, vec![0, 1]);
    assert_eq!(dropped, vec![2]);
    let pruned = inst.restrict(&keep).unwrap();
    assert_eq!(pruned.n(), 2);
    // The pruned instance still solves.
    let res = decision_psdp(&pruned, &DecisionOptions::practical(0.2)).unwrap();
    match res.outcome {
        Outcome::Dual(_) | Outcome::Primal(_) => {}
    }
}
