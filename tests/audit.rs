//! The audit audits itself: drive the `psdp-audit` pipeline over the
//! fixture corpus (`tests/fixtures/audit_corpus/`) and over the live
//! workspace.
//!
//! Three layers of assurance:
//! 1. **Corpus** — every rule fires on its positive fixture at the exact
//!    expected lines, stays silent on near-misses (strings, comments,
//!    test code, slice patterns, …), and is silenced by a well-formed
//!    inline suppression (which is *counted*, not dropped).
//! 2. **Self-check** — the committed workspace is clean under
//!    `--deny-warnings` semantics, which is exactly what CI enforces.
//! 3. **Gate demo** — seeding a violation into a scratch workspace makes
//!    the audit fail with a `file:line`-anchored finding, proving the CI
//!    gate would catch a regression.

use psdp_analyze::report::{Report, Severity};
use psdp_analyze::{audit_source, config, run_audit, Options};
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/audit_corpus")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Run one fixture through the full per-file pipeline (lexer, test mask,
/// suppressions) under a synthetic workspace-relative path — rule scoping
/// is path-based, so the same source can be probed in and out of scope.
fn audit_fixture(name: &str, synthetic_path: &str) -> Report {
    let src = std::fs::read_to_string(corpus_dir().join(name))
        .unwrap_or_else(|e| panic!("fixture {name}: {e}"));
    let mut cfg = config::Config::default();
    let mut report = Report::default();
    audit_source(synthetic_path, &src, &mut cfg, &mut report);
    report.sort();
    report
}

fn hits(r: &Report) -> Vec<(&'static str, usize)> {
    r.findings.iter().map(|f| (f.rule, f.line)).collect()
}

const DET: &str = "crates/core/src/solver.rs";
const REQ: &str = "crates/serve/src/scheduler.rs";

#[test]
fn d1_corpus_positive_suppressed_nearmiss() {
    let r = audit_fixture("d1_positive.rs", DET);
    assert_eq!(hits(&r), [("D1", 1), ("D1", 3), ("D1", 4)], "{}", r.human());

    let r = audit_fixture("d1_suppressed.rs", DET);
    assert!(r.findings.is_empty(), "{}", r.human());
    assert_eq!(r.suppressions_used, 2);

    let r = audit_fixture("d1_nearmiss.rs", DET);
    assert!(r.findings.is_empty(), "{}", r.human());

    // Same violation out of scope (non-deterministic crate): silent.
    let r = audit_fixture("d1_positive.rs", "crates/workloads/src/graphs.rs");
    assert!(r.findings.is_empty(), "{}", r.human());
}

#[test]
fn d2_corpus_positive_nearmiss() {
    let r = audit_fixture("d2_positive.rs", DET);
    assert_eq!(hits(&r), [("D2", 4), ("D2", 8)], "{}", r.human());

    let r = audit_fixture("d2_nearmiss.rs", DET);
    assert!(r.findings.is_empty(), "{}", r.human());
}

#[test]
fn d3_corpus_positive_suppressed_nearmiss() {
    let r = audit_fixture("d3_positive.rs", DET);
    assert_eq!(hits(&r), [("D3", 1), ("D3", 4), ("D3", 10), ("D3", 15)], "{}", r.human());

    let r = audit_fixture("d3_suppressed.rs", DET);
    assert!(r.findings.is_empty(), "{}", r.human());
    assert_eq!(r.suppressions_used, 1);

    let r = audit_fixture("d3_nearmiss.rs", DET);
    assert!(r.findings.is_empty(), "{}", r.human());
}

#[test]
fn r1_corpus_positive_suppressed_nearmiss() {
    let r = audit_fixture("r1_positive.rs", REQ);
    assert_eq!(hits(&r), [("R1", 2), ("R1", 3), ("R1", 9), ("R1", 14)], "{}", r.human());

    let r = audit_fixture("r1_suppressed.rs", REQ);
    assert!(r.findings.is_empty(), "{}", r.human());
    assert_eq!(r.suppressions_used, 1);

    let r = audit_fixture("r1_nearmiss.rs", REQ);
    assert!(r.findings.is_empty(), "{}", r.human());

    // Solver internals may index and unwrap freely (R1 is request-path
    // scoped); D1-D3 do not fire on panics either.
    let r = audit_fixture("r1_positive.rs", DET);
    assert!(r.findings.is_empty(), "{}", r.human());
}

#[test]
fn h1_corpus_inventory_and_justification() {
    // H1 applies everywhere, deterministic crate or not.
    let r = audit_fixture("h1_positive.rs", "crates/workloads/src/gen.rs");
    assert_eq!(hits(&r), [("H1", 2)], "{}", r.human());
    assert_eq!(r.unsafe_sites.len(), 1);
    assert!(!r.unsafe_sites[0].justified);

    let r = audit_fixture("h1_justified.rs", "crates/workloads/src/gen.rs");
    assert!(r.findings.is_empty(), "{}", r.human());
    assert_eq!(r.unsafe_sites.len(), 1);
    assert!(r.unsafe_sites[0].justified);
}

#[test]
fn meta_rules_keep_suppressions_honest() {
    // Malformed suppressions are S1 errors AND fail to suppress: the D1s
    // they sat next to still fire.
    let r = audit_fixture("s1_malformed.rs", DET);
    assert_eq!(hits(&r), [("S1", 1), ("D1", 2), ("D1", 4), ("S1", 5), ("D1", 6)], "{}", r.human());
    assert!(r.findings.iter().all(|f| f.severity == Severity::Error));
    assert_eq!(r.suppressions_used, 0);

    // A suppression matching nothing is an S2 warning: clean by default,
    // fatal under --deny-warnings (the CI configuration).
    let r = audit_fixture("s2_unused.rs", DET);
    assert_eq!(hits(&r), [("S2", 1)], "{}", r.human());
    assert_eq!(r.findings[0].severity, Severity::Warning);
    assert!(r.is_clean(false));
    assert!(!r.is_clean(true));
}

#[test]
fn renderings_anchor_findings_to_spans() {
    let r = audit_fixture("d1_positive.rs", DET);
    let human = r.human();
    assert!(human.contains(&format!("error[D1] {DET}:1:")), "{human}");
    let json = r.json();
    assert!(json.contains("\"rule\":\"D1\""), "{json}");
    assert!(json.contains(&format!("\"file\":\"{DET}\"")), "{json}");
    assert!(json.contains("\"line\":1"), "{json}");
}

/// The committed workspace must pass its own audit under the exact
/// semantics CI runs (`--deny-warnings`): zero errors, zero warnings —
/// so no stale suppressions or allowlist entries either.
#[test]
fn live_workspace_is_audit_clean() {
    let report = run_audit(&workspace_root(), &Options::default()).expect("audit runs");
    assert!(report.is_clean(true), "workspace audit not clean:\n{}", report.human());
    // Sanity that the walk actually saw the workspace, not an empty dir.
    assert!(report.files_scanned > 50, "only {} files scanned", report.files_scanned);
    // Every unsafe site in the tree carries a SAFETY justification.
    assert!(report.unsafe_sites.iter().all(|s| s.justified));
}

/// Gate demo: seed violations into a scratch workspace and watch the
/// audit fail with file:line-anchored findings — this is the regression
/// CI's fail-fast `psdp-analyze --deny-warnings` step would catch.
#[test]
fn seeded_violation_fails_the_gate() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("audit_gate_demo");
    let core = root.join("crates/core/src");
    let serve = root.join("crates/serve/src");
    std::fs::create_dir_all(&core).expect("scratch workspace");
    std::fs::create_dir_all(&serve).expect("scratch workspace");
    std::fs::write(
        core.join("state.rs"),
        "use std::collections::HashMap;\npub type State = HashMap<u64, f64>;\n",
    )
    .expect("seed D1");
    std::fs::write(
        serve.join("handler.rs"),
        "pub fn id(line: &str) -> String {\n    line.split(':').next().unwrap().to_string()\n}\n",
    )
    .expect("seed R1");

    let report = run_audit(&root, &Options::default()).expect("audit runs");
    assert!(!report.is_clean(false), "seeded violations must fail the gate");
    let rules: Vec<(&str, &str, usize)> =
        report.findings.iter().map(|f| (f.rule, f.file.as_str(), f.line)).collect();
    assert!(rules.contains(&("D1", "crates/core/src/state.rs", 1)), "{rules:?}");
    assert!(rules.contains(&("R1", "crates/serve/src/handler.rs", 2)), "{rules:?}");
}
