//! Observer stop paths: `ExitReason::ObserverStopped` must surface
//! cleanly from every loop an observer can halt — a bare decision solve,
//! `Session::optimize` mid-bisection, and `MixedSession::optimize`
//! mid-bisection — with telemetry (engine_evals, replayed, bracket
//! accounting) still consistent after the early stop.

use psdp_core::{
    ApproxOptions, ExitReason, IterationEvent, MixedApproxOptions, MixedInstance, MixedSolver,
    Observer, ObserverControl, PackingInstance, PhaseEvent, Solver,
};
use psdp_sparse::PsdMatrix;
use psdp_test_support::{factorized_instance, FactorizedSpec};

/// Stops after `stop_after_iters` iteration events, counting everything
/// it sees on the way.
struct StopAfter {
    stop_after_iters: usize,
    iters: usize,
    brackets_seen: usize,
    solves_started: usize,
}

impl StopAfter {
    fn new(stop_after_iters: usize) -> Self {
        StopAfter { stop_after_iters, iters: 0, brackets_seen: 0, solves_started: 0 }
    }
}

impl Observer for StopAfter {
    fn on_phase(&mut self, event: &PhaseEvent<'_>) {
        match event {
            PhaseEvent::BracketUpdated { .. } => self.brackets_seen += 1,
            PhaseEvent::SolveStarted { .. } => self.solves_started += 1,
            PhaseEvent::SolveFinished { .. } => {}
        }
    }

    fn on_iteration(&mut self, _: &IterationEvent) -> ObserverControl {
        self.iters += 1;
        if self.iters >= self.stop_after_iters {
            ObserverControl::Stop
        } else {
            ObserverControl::Continue
        }
    }
}

/// A stop during a plain decision solve: uncertified primal telemetry,
/// consistent stats.
#[test]
fn decision_solve_stop_surfaces_exit_reason() {
    let inst = factorized_instance(&FactorizedSpec::new(8, 5, 11));
    let solver = Solver::builder(&inst).build().expect("build");
    let mut session = solver.session();
    session.add_observer(Box::new(StopAfter::new(4)));
    let res = session.solve(1.0).expect("solve");
    assert_eq!(res.stats.exit, ExitReason::ObserverStopped);
    assert_eq!(res.stats.iterations, 4);
    assert!(res.stats.engine_evals <= res.stats.iterations);
    assert!(res.outcome.primal().is_some(), "stopped solve reports the averaged primal");
}

/// Mid-bisection stop in `Session::optimize`: the report must stay
/// internally consistent — every call recorded, bracket rows covering
/// every call, totals ≥ accepted-call sums, converged = false.
#[test]
fn session_optimize_stop_mid_bisection() {
    let inst = factorized_instance(&FactorizedSpec::new(8, 6, 9).with_scale(1.0));
    let opts = ApproxOptions::serving(0.05);
    let solver = Solver::builder(&inst).options(opts.decision).build().expect("build");

    // Find how many iterations the full run needs, then stop mid-way
    // through (after at least one completed bracket).
    let full = solver.session().optimize(&opts).expect("full run");
    assert!(full.converged && full.decision_calls >= 2, "fixture too easy: {full:?}");
    let first_bracket_iters = full.brackets[0].iterations;
    let stop_at = first_bracket_iters + 2;

    let mut session = solver.session();
    session.add_observer(Box::new(StopAfter::new(stop_at)));
    let r = session.optimize(&opts).expect("stopped run");

    assert!(!r.converged, "stopped bisection must not claim convergence");
    assert!(r.decision_calls >= 2, "stop must land mid-bisection, not before it");
    assert!(r.decision_calls < full.decision_calls, "stop did not shorten the bisection");
    assert_eq!(r.brackets.len(), r.decision_calls, "every call needs a bracket row");
    assert_eq!(r.call_stats.len(), r.decision_calls);
    assert_eq!(
        r.call_stats.last().map(|s| s.exit),
        Some(ExitReason::ObserverStopped),
        "last recorded call must carry the stop"
    );
    // The aborted call leaves the bracket where it was.
    let last = r.brackets.last().unwrap();
    if r.brackets.len() >= 2 {
        let prev = &r.brackets[r.brackets.len() - 2];
        assert_eq!(last.lo.to_bits(), prev.lo.to_bits());
        assert_eq!(last.hi.to_bits(), prev.hi.to_bits());
    }
    // Work accounting still adds up: bracket totals equal report totals,
    // accepted-call sums never exceed them.
    let bracket_iters: usize = r.brackets.iter().map(|b| b.iterations).sum();
    let bracket_evals: usize = r.brackets.iter().map(|b| b.engine_evals).sum();
    let bracket_replayed: usize = r.brackets.iter().map(|b| b.replayed).sum();
    assert_eq!(bracket_iters, r.total_iterations);
    assert_eq!(bracket_evals, r.total_engine_evals);
    assert_eq!(bracket_replayed, r.total_replayed);
    let accepted_iters: usize = r.call_stats.iter().map(|s| s.iterations).sum();
    let accepted_evals: usize = r.call_stats.iter().map(|s| s.engine_evals).sum();
    let accepted_replayed: usize = r.call_stats.iter().map(|s| s.replayed).sum();
    assert!(accepted_iters <= r.total_iterations);
    assert!(accepted_evals <= r.total_engine_evals);
    assert!(accepted_replayed <= r.total_replayed);
    // The certified bounds that were established before the stop survive.
    assert!(r.value_lower > 0.0 && r.value_upper >= r.value_lower);
}

/// Mid-bisection stop in `MixedSession::optimize`: same consistency
/// contract on the mixed report.
#[test]
fn mixed_optimize_stop_mid_bisection() {
    let inst = MixedInstance::new(
        vec![
            PsdMatrix::Diagonal(vec![2.0, 0.0, 1.0]),
            PsdMatrix::Diagonal(vec![0.0, 2.0, 0.5]),
            PsdMatrix::Diagonal(vec![1.0, 1.0, 0.0]),
        ],
        vec![
            PsdMatrix::Diagonal(vec![1.0, 0.0, 0.5]),
            PsdMatrix::Diagonal(vec![0.0, 1.0, 0.0]),
            PsdMatrix::Diagonal(vec![0.5, 0.0, 1.0]),
        ],
    )
    .expect("valid mixed instance");
    let opts = MixedApproxOptions::practical(0.05);
    let solver = MixedSolver::builder(&inst).options(opts.decision).build().expect("build");

    let full = solver.session().optimize(&opts).expect("full run");
    assert!(full.decision_calls >= 2, "fixture too easy: {full:?}");
    let stop_at = full.brackets[0].iterations + 1;

    let mut session = solver.session();
    session.add_observer(Box::new(StopAfter::new(stop_at)));
    let r = session.optimize(&opts).expect("stopped run");

    assert!(!r.converged);
    assert!(r.decision_calls >= 2 && r.decision_calls <= full.decision_calls);
    assert_eq!(r.brackets.len(), r.decision_calls);
    assert_eq!(r.call_stats.len(), r.decision_calls);
    assert_eq!(r.call_stats.last().map(|s| s.exit), Some(ExitReason::ObserverStopped));
    let bracket_iters: usize = r.brackets.iter().map(|b| b.iterations).sum();
    let bracket_evals: usize = r.brackets.iter().map(|b| b.engine_evals).sum();
    assert_eq!(bracket_iters, r.total_iterations);
    assert_eq!(bracket_evals, r.total_engine_evals);
    // The pre-stop certified bracket survives (witness lower bound is
    // always established structurally).
    assert!(r.threshold_lower > 0.0 && r.threshold_upper >= r.threshold_lower);
}

/// Observers see the phase stream in a consistent order during a stopped
/// bisection: every solve start has a finish (the stopped one included),
/// and `BracketUpdated` fires for exactly the calls that completed.
#[test]
fn observer_event_stream_is_consistent_after_stop() {
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Recorder {
        inner: StopAfter,
        log: Rc<RefCell<Vec<&'static str>>>,
    }
    impl Observer for Recorder {
        fn on_phase(&mut self, event: &PhaseEvent<'_>) {
            self.inner.on_phase(event);
            self.log.borrow_mut().push(match event {
                PhaseEvent::SolveStarted { .. } => "start",
                PhaseEvent::SolveFinished { .. } => "finish",
                PhaseEvent::BracketUpdated { .. } => "bracket",
            });
        }
        fn on_iteration(&mut self, ev: &IterationEvent) -> ObserverControl {
            self.inner.on_iteration(ev)
        }
    }

    let inst = PackingInstance::new(vec![
        PsdMatrix::Diagonal(vec![2.0, 0.0]),
        PsdMatrix::Diagonal(vec![0.0, 4.0]),
    ])
    .expect("valid");
    let opts = ApproxOptions::serving(0.1);
    let solver = Solver::builder(&inst).options(opts.decision).build().expect("build");
    let mut session = solver.session();
    let log = Rc::new(RefCell::new(Vec::new()));
    session.add_observer(Box::new(Recorder { inner: StopAfter::new(6), log: Rc::clone(&log) }));
    let r = session.optimize(&opts).expect("run");
    assert!(!r.converged);
    assert!(r.total_iterations >= 6, "observer stop fired before 6 live iterations");

    let log = log.borrow();
    let count = |k: &str| log.iter().filter(|&&e| e == k).count();
    assert_eq!(log.first(), Some(&"start"), "stream must open with a solve start");
    assert_eq!(count("start"), count("finish"), "every solve start needs a finish: {log:?}");
    assert_eq!(
        count("bracket"),
        r.decision_calls - 1,
        "brackets fire for completed calls only: {log:?}"
    );
}
