//! End-to-end pipeline tests: workload generator → (normalization →)
//! solver → certified verification, across every instance family.

use psdp_core::{
    decision_psdp, solve_covering, solve_packing, verify_dual, verify_primal, ApproxOptions,
    DecisionOptions, Outcome, PackingInstance,
};
use psdp_workloads::{
    beamforming_sdp, edge_packing, figure1_instance, gnp, grid, random_factorized,
    set_cover_packing, Beamforming, RandomFactorized,
};

/// Whatever side the decision procedure certifies must pass independent
/// verification, across families and epsilon values.
#[test]
fn decision_certificates_hold_across_families() {
    let instances: Vec<(&str, PackingInstance)> = vec![
        (
            "random_factorized",
            PackingInstance::new(random_factorized(&RandomFactorized {
                dim: 12,
                n: 8,
                rank: 2,
                nnz_per_col: 4,
                width: 2.0,
                seed: 1,
            }))
            .unwrap(),
        ),
        ("figure1", PackingInstance::new(figure1_instance()).unwrap()),
        ("set_cover", PackingInstance::new(set_cover_packing(10, 6, 3, 2)).unwrap()),
        ("grid_edges", PackingInstance::new(edge_packing(&grid(3, 4))).unwrap()),
    ];
    for (name, inst) in &instances {
        for eps in [0.3, 0.15] {
            let res = decision_psdp(inst, &DecisionOptions::practical(eps))
                .unwrap_or_else(|e| panic!("{name}: solve failed: {e}"));
            match &res.outcome {
                Outcome::Dual(d) => {
                    let c = verify_dual(inst, d, 1e-7);
                    assert!(
                        c.feasible,
                        "{name} eps={eps}: dual infeasible (λmax {})",
                        c.lambda_max
                    );
                    assert!(d.value > 0.0, "{name}: trivial dual");
                }
                Outcome::Primal(p) => {
                    let c = verify_primal(inst, p, 1e-4);
                    assert!(c.feasible, "{name} eps={eps}: primal infeasible ({c:?})");
                }
            }
        }
    }
}

/// approxPSDP brackets close and are internally consistent on packing
/// instances from different generators.
#[test]
fn packing_brackets_close() {
    let instances = vec![
        PackingInstance::new(random_factorized(&RandomFactorized {
            dim: 10,
            n: 6,
            rank: 2,
            nnz_per_col: 3,
            width: 1.0,
            seed: 9,
        }))
        .unwrap(),
        PackingInstance::new(edge_packing(&gnp(12, 0.4, 3))).unwrap(),
    ];
    for inst in &instances {
        let r = solve_packing(inst, &ApproxOptions::practical(0.15)).unwrap();
        assert!(r.converged, "bracket [{}, {}]", r.value_lower, r.value_upper);
        assert!(r.value_lower > 0.0);
        assert!(r.value_upper >= r.value_lower);
        let d = r.best_dual.as_ref().expect("dual witness");
        let c = verify_dual(inst, d, 1e-7);
        assert!(c.feasible, "best dual infeasible: λmax {}", c.lambda_max);
        // The feasible dual certifies the reported lower bound: its value
        // is at least value_lower (quantized bracket moves may report a
        // slightly smaller — still certified — bound than the witness).
        assert!(
            c.value >= r.value_lower * (1.0 - 1e-9),
            "dual value {} below reported lower {}",
            c.value,
            r.value_lower
        );
    }
}

/// Full covering pipeline (Appendix A normalization included) on the
/// beamforming SDP: value bracket, primal feasibility in *original*
/// coordinates, dual nonnegativity.
#[test]
fn covering_pipeline_beamforming() {
    let sdp = beamforming_sdp(&Beamforming {
        antennas: 5,
        users: 4,
        sinr_target: 1.5,
        noise: 0.8,
        spread: 3.0,
        seed: 13,
    });
    let r = solve_covering(&sdp, &ApproxOptions::practical(0.12)).unwrap();
    assert!(r.packing.converged);
    assert!(r.value_lower > 0.0 && r.value_upper >= r.value_lower);

    // Primal mapped back: constraint satisfaction and objective match.
    let y = r.y.as_ref().expect("dense primal witness");
    for ((a, &b), lam) in sdp.constraints.iter().zip(&sdp.rhs).zip(&r.lambda) {
        let dot = a.dot_dense(y);
        assert!(dot >= b * (1.0 - 1e-6), "covering constraint violated: {dot} < {b}");
        assert!(*lam >= 0.0);
    }
    // The witness certifies a bound inside the reported bracket (it may be
    // tighter than the quantized value_upper, never looser).
    let cy = sdp.objective.dot_dense(y);
    assert!(
        cy <= r.value_upper * (1.0 + 1e-6),
        "objective {cy} exceeds reported upper {}",
        r.value_upper
    );
    assert!(
        cy >= r.value_lower * (1.0 - 1e-6),
        "objective {cy} below reported lower {}",
        r.value_lower
    );

    // Y itself must be PSD.
    let eig = psdp_linalg::sym_eigen(y).unwrap();
    assert!(eig.lambda_min() > -1e-8 * eig.lambda_max().max(1.0));
}

/// Dropping eps tightens the bracket (monotone accuracy).
#[test]
fn tighter_eps_tightens_bracket() {
    let inst = PackingInstance::new(random_factorized(&RandomFactorized {
        dim: 8,
        n: 5,
        rank: 2,
        nnz_per_col: 3,
        width: 1.0,
        seed: 4,
    }))
    .unwrap();
    let loose = solve_packing(&inst, &ApproxOptions::practical(0.4)).unwrap();
    let tight = solve_packing(&inst, &ApproxOptions::practical(0.08)).unwrap();
    let loose_ratio = loose.value_upper / loose.value_lower;
    let tight_ratio = tight.value_upper / tight.value_lower;
    assert!(tight_ratio <= loose_ratio + 1e-9, "{tight_ratio} vs {loose_ratio}");
    assert!(tight_ratio <= 1.0 + 0.16, "tight bracket not within (1+2eps): {tight_ratio}");
    // Brackets must overlap (they bound the same OPT).
    assert!(tight.value_lower <= loose.value_upper + 1e-9);
    assert!(loose.value_lower <= tight.value_upper + 1e-9);
}
