//! Reproducibility guarantees: identical seeds ⇒ identical outputs, and
//! results are thread-count independent. The reductions everywhere in the
//! workspace are deterministic in *shape* (fixed chunking, order-preserving
//! buffer concatenation, per-item independent work), so full reports are
//! asserted **bitwise** identical across rayon pool sizes {1, 4} — the
//! same two-entry matrix CI runs via `RAYON_NUM_THREADS`.

use psdp_core::{
    decision_psdp, solve_mixed, solve_packing, verify_dual, ApproxOptions, DecisionOptions,
    EngineKind, MixedApproxOptions, Outcome, PackingInstance,
};
use psdp_parallel::run_with_threads;
use psdp_test_support::{factorized_instance, FactorizedSpec};
use psdp_workloads::{beamforming_sdp, gnp, mixed_edge_cover, mixed_lp_diagonal, Beamforming};

fn instance(seed: u64) -> PackingInstance {
    factorized_instance(&FactorizedSpec::new(10, 6, seed))
}

/// Bitwise-identical solves for identical configuration (exact engine: no
/// randomness at all; sketched engine: seeded sketches).
#[test]
fn identical_runs_identical_outputs() {
    let inst = instance(17);
    for kind in [
        EngineKind::Exact,
        EngineKind::TaylorJl { eps: 0.2, sketch_const: 4.0 },
        EngineKind::Expv { eps: 0.2 },
    ] {
        let opts = DecisionOptions::practical(0.2).with_engine(kind).with_seed(9);
        let a = decision_psdp(&inst, &opts).unwrap();
        let b = decision_psdp(&inst, &opts).unwrap();
        assert_eq!(a.stats.iterations, b.stats.iterations, "{kind:?}");
        match (&a.outcome, &b.outcome) {
            (Outcome::Dual(x), Outcome::Dual(y)) => assert_eq!(x.x, y.x, "{kind:?}"),
            (Outcome::Primal(x), Outcome::Primal(y)) => {
                assert_eq!(x.constraint_dots, y.constraint_dots, "{kind:?}")
            }
            _ => panic!("{kind:?}: outcome side differed between identical runs"),
        }
    }
}

/// Different sketch seeds may change the trajectory but never the
/// certificate validity.
#[test]
fn sketch_seed_never_breaks_certificates() {
    let inst = instance(23);
    for seed in 0..6u64 {
        let opts = DecisionOptions::practical(0.2)
            .with_engine(EngineKind::TaylorJl { eps: 0.2, sketch_const: 4.0 })
            .with_seed(seed);
        let res = decision_psdp(&inst, &opts).unwrap();
        if let Outcome::Dual(d) = &res.outcome {
            assert!(verify_dual(&inst, d, 1e-7).feasible, "seed {seed}");
        }
    }
}

/// Thread count must not change the certified outcome (the reductions are
/// deterministic in shape; tiny float reassociation differences stay within
/// certificate tolerance).
#[test]
fn thread_count_invariant_certificates() {
    let inst = instance(31);
    let opts = DecisionOptions::practical(0.2);
    let r1 = run_with_threads(1, || decision_psdp(&inst, &opts).unwrap());
    let r2 = run_with_threads(2, || decision_psdp(&inst, &opts).unwrap());
    assert_eq!(r1.stats.iterations, r2.stats.iterations);
    match (&r1.outcome, &r2.outcome) {
        (Outcome::Dual(a), Outcome::Dual(b)) => {
            assert!((a.value - b.value).abs() < 1e-9 * a.value.max(1.0));
            assert!(verify_dual(&inst, a, 1e-7).feasible);
            assert!(verify_dual(&inst, b, 1e-7).feasible);
        }
        (Outcome::Primal(a), Outcome::Primal(b)) => {
            assert!((a.min_dot - b.min_dot).abs() < 1e-9 * a.min_dot.max(1.0));
        }
        _ => panic!("outcome side changed with thread count"),
    }
}

/// `Session::optimize` must be **bitwise** thread-count invariant: every
/// parallel reduction in the stack (chunked `weighted_sum`, order-preserving
/// Ψ scatter buffers, per-constraint engine dots) is deterministic in shape,
/// so pool size {1, 4} must reproduce the entire report bit for bit —
/// bracket, certificates, and per-call stats.
#[test]
fn session_optimize_bitwise_across_thread_counts() {
    for seed in [5u64, 31] {
        let inst = instance(seed);
        let opts = ApproxOptions::practical(0.15);
        let r1 = run_with_threads(1, || solve_packing(&inst, &opts).unwrap());
        let r4 = run_with_threads(4, || solve_packing(&inst, &opts).unwrap());
        assert_eq!(r1.value_lower.to_bits(), r4.value_lower.to_bits(), "seed {seed}");
        assert_eq!(r1.value_upper.to_bits(), r4.value_upper.to_bits(), "seed {seed}");
        assert_eq!(r1.decision_calls, r4.decision_calls, "seed {seed}");
        assert_eq!(r1.total_iterations, r4.total_iterations, "seed {seed}");
        assert_eq!(r1.total_engine_evals, r4.total_engine_evals, "seed {seed}");
        match (&r1.best_dual, &r4.best_dual) {
            (Some(a), Some(b)) => {
                assert_eq!(a.value.to_bits(), b.value.to_bits(), "seed {seed}");
                assert_eq!(a.x, b.x, "seed {seed}: dual vectors diverged across pools");
            }
            (None, None) => {}
            _ => panic!("seed {seed}: dual presence changed with thread count"),
        }
        for (a, b) in r1.call_stats.iter().zip(&r4.call_stats) {
            assert_eq!(a.iterations, b.iterations, "seed {seed}");
            assert_eq!(a.final_norm1.to_bits(), b.final_norm1.to_bits(), "seed {seed}");
        }
    }
}

/// The same bitwise pool-width guarantee for `Session::optimize` under the
/// Krylov/Chebyshev expm-action engine: its blocked-GEMM block applies,
/// per-column Lanczos sweeps, and trace probes all decompose work in fixed
/// shapes, so the whole bisection must reproduce bit for bit.
#[test]
fn session_optimize_bitwise_across_thread_counts_expv() {
    for seed in [5u64, 31] {
        let inst = instance(seed);
        let mut opts = ApproxOptions::practical(0.15);
        opts.decision = opts.decision.with_engine(EngineKind::Expv { eps: 0.2 }).with_seed(9);
        let r1 = run_with_threads(1, || solve_packing(&inst, &opts).unwrap());
        let r4 = run_with_threads(4, || solve_packing(&inst, &opts).unwrap());
        assert_eq!(r1.value_lower.to_bits(), r4.value_lower.to_bits(), "seed {seed}");
        assert_eq!(r1.value_upper.to_bits(), r4.value_upper.to_bits(), "seed {seed}");
        assert_eq!(r1.decision_calls, r4.decision_calls, "seed {seed}");
        assert_eq!(r1.total_iterations, r4.total_iterations, "seed {seed}");
        match (&r1.best_dual, &r4.best_dual) {
            (Some(a), Some(b)) => {
                assert_eq!(a.value.to_bits(), b.value.to_bits(), "seed {seed}");
                assert_eq!(a.x, b.x, "seed {seed}: dual vectors diverged across pools");
            }
            (None, None) => {}
            _ => panic!("seed {seed}: dual presence changed with thread count"),
        }
    }
}

/// The mixed solver gets the same bitwise guarantee across pools, on both
/// the diagonal-embedded LP family and the sparse graph family (the latter
/// exercises the CSR scatter and sparse `weighted_sum` paths).
#[test]
fn mixed_solver_bitwise_across_thread_counts() {
    let instances = [mixed_lp_diagonal(5, 4, 6, 0.6, 3), mixed_edge_cover(&gnp(8, 0.6, 2), 0.5)];
    // Default (exact) packing engine on the first pass, the expm-action
    // engine on the second: both must be pool-width invariant.
    let mut expv = MixedApproxOptions::practical(0.15);
    expv.decision = expv.decision.with_engine(EngineKind::Expv { eps: 0.2 });
    for opts in [MixedApproxOptions::practical(0.15), expv] {
        for (i, inst) in instances.iter().enumerate() {
            let r1 = run_with_threads(1, || solve_mixed(inst, &opts).unwrap());
            let r4 = run_with_threads(4, || solve_mixed(inst, &opts).unwrap());
            assert_eq!(r1.threshold_lower.to_bits(), r4.threshold_lower.to_bits(), "inst {i}");
            assert_eq!(r1.threshold_upper.to_bits(), r4.threshold_upper.to_bits(), "inst {i}");
            assert_eq!(r1.decision_calls, r4.decision_calls, "inst {i}");
            assert_eq!(r1.total_iterations, r4.total_iterations, "inst {i}");
            match (&r1.best_point, &r4.best_point) {
                (Some(a), Some(b)) => {
                    assert_eq!(
                        a.cover_lambda_min.to_bits(),
                        b.cover_lambda_min.to_bits(),
                        "inst {i}"
                    );
                    assert_eq!(a.x, b.x, "inst {i}: witness diverged across pools");
                }
                (None, None) => {}
                _ => panic!("inst {i}: witness presence changed with thread count"),
            }
            match (&r1.infeasibility_witness, &r4.infeasibility_witness) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.margin.to_bits(), b.margin.to_bits(), "inst {i}");
                    assert_eq!(a.sigma.to_bits(), b.sigma.to_bits(), "inst {i}");
                }
                (None, None) => {}
                _ => panic!("inst {i}: infeasibility witness presence changed with thread count"),
            }
        }
    }
}

/// Build the serving suite's JSONL batch: a zipf-repeated decision/
/// optimize stream over inline packing instances plus one mixed request.
fn serve_batch_jsonl() -> String {
    use psdp_cli::jsonfmt::json_str;
    let (instances, stream) = psdp_workloads::request_stream(&psdp_workloads::RequestStreamSpec {
        pool: 3,
        requests: 8,
        dim: 8,
        n: 5,
        zipf_s: 1.1,
        thresholds: 2,
        seed: 7,
    });
    let texts: Vec<String> = instances.iter().map(psdp_core::write_instance).collect();
    let mut lines = Vec::new();
    for (i, r) in stream.iter().enumerate() {
        if i % 4 == 3 {
            lines.push(format!(
                "{{\"id\":{},\"command\":\"optimize\",\"instance\":{},\"eps\":0.2}}",
                json_str(&r.id),
                json_str(&texts[r.instance]),
            ));
        } else {
            lines.push(format!(
                "{{\"id\":{},\"command\":\"solve\",\"instance\":{},\"threshold\":{},\"eps\":0.2}}",
                json_str(&r.id),
                json_str(&texts[r.instance]),
                r.threshold,
            ));
        }
    }
    let mixed = mixed_lp_diagonal(4, 3, 5, 0.6, 3);
    lines.push(format!(
        "{{\"id\":\"mix001\",\"command\":\"mixed\",\"instance\":{},\"eps\":0.2}}",
        json_str(&psdp_core::write_mixed_instance(&mixed)),
    ));
    lines.join("\n") + "\n"
}

fn run_serve(input: &str) -> String {
    let args = psdp_cli::args::Args::parse(&["serve".to_string()]).unwrap();
    psdp_cli::serve::serve_on_input(&args, input).expect("serve runs").stdout
}

/// The scheduler's full JSONL response stream must be **bitwise** identical
/// across rayon pool sizes {1, 4} — same CI thread matrix as the solver
/// suites. Response lines carry no wall-clock fields (`wall_ms` is null in
/// serve mode), so the comparison is over every byte the server emits.
#[test]
fn serve_responses_bitwise_across_thread_counts() {
    let input = serve_batch_jsonl();
    let out1 = run_with_threads(1, || run_serve(&input));
    let out4 = run_with_threads(4, || run_serve(&input));
    assert_eq!(out1, out4, "serve stream changed with pool size");
    // Sanity: the batch actually exercised the cache.
    assert!(out1.contains("\"memoized\":true") || out1.contains("\"prep_reused\":true"), "{out1}");
}

/// Shuffling submission order must not change any response keyed by its
/// id: same-fingerprint requests execute in id order regardless of where
/// they sit in the stream, so per-request stats (engine evals, memo hits)
/// cannot leak submission order.
#[test]
fn serve_responses_bitwise_across_submission_orders() {
    let input = serve_batch_jsonl();
    let mut lines: Vec<&str> = input.lines().collect();
    let forward = run_serve(&input);

    // Deterministic shuffles: reverse, and an interleave.
    lines.reverse();
    let reversed = run_serve(&(lines.join("\n") + "\n"));
    let mut interleaved: Vec<&str> = Vec::new();
    let half = lines.len() / 2;
    for i in 0..half {
        interleaved.push(lines[i]);
        if half + i < lines.len() {
            interleaved.push(lines[half + i]);
        }
    }
    if lines.len() % 2 == 1 {
        interleaved.push(lines[lines.len() - 1]);
    }
    let inter = run_serve(&(interleaved.join("\n") + "\n"));

    let keyed = |out: &str| -> Vec<String> {
        let mut v: Vec<String> = out.lines().map(str::to_string).collect();
        v.sort();
        v
    };
    assert_eq!(keyed(&forward), keyed(&reversed), "reversal changed a response");
    assert_eq!(keyed(&forward), keyed(&inter), "interleave changed a response");
}

/// The scheduler's bounded concurrency knob is wall-clock-only: any
/// `max_in_flight` must reproduce the stream bitwise.
#[test]
fn serve_responses_bitwise_across_in_flight_bounds() {
    let input = serve_batch_jsonl();
    let run_bounded = |n: usize| {
        let args = psdp_cli::args::Args::parse(&[
            "serve".to_string(),
            "--max-in-flight".to_string(),
            n.to_string(),
        ])
        .unwrap();
        psdp_cli::serve::serve_on_input(&args, &input).expect("serve runs").stdout
    };
    let one = run_bounded(1);
    let four = run_bounded(4);
    assert_eq!(one, four, "max-in-flight changed the stream");
}

fn run_listen(extra: &[&str], input: &str) -> String {
    let mut argv = vec!["serve".to_string(), "--listen".to_string()];
    argv.extend(extra.iter().map(|s| s.to_string()));
    let args = psdp_cli::args::Args::parse(&argv).unwrap();
    psdp_cli::serve::serve_listen_on_input(&args, input).expect("listen runs").stdout
}

/// The persistent service's response stream must be **bitwise** identical
/// across rayon pool sizes {1, 4} × shard counts {1, 4}, and must match
/// the one-shot scheduler byte-for-byte: a fingerprint routes to exactly
/// one shard whose single worker drains in arrival order, so neither the
/// shard count nor worker interleaving can reach the bytes.
#[test]
fn listen_responses_bitwise_across_threads_and_shards() {
    let input = serve_batch_jsonl();
    let base = run_with_threads(1, || run_listen(&[], &input));
    for threads in [1usize, 4] {
        for shards in ["1", "4"] {
            let out = run_with_threads(threads, || run_listen(&["--shards", shards], &input));
            assert_eq!(base, out, "stream changed at threads={threads} shards={shards}");
        }
    }
    assert_eq!(base, run_serve(&input), "listen and one-shot serve disagree");
}

/// A text JSONL submission and a binary-frame submission of the **same**
/// request schedule must produce bitwise-identical response streams,
/// across rayon pool sizes {1, 4}. The binary ingest path changes how the
/// instance bytes arrive (psdp-bin-1 frames, hash read off the header)
/// but never what the solver computes or how requests are fingerprinted —
/// text and binary submissions of one instance share a content hash, so
/// they must also share cache groups and memo tiers.
#[test]
fn listen_text_and_binary_submissions_bitwise_across_thread_counts() {
    let batch = psdp_workloads::mixed_request_stream(&psdp_workloads::MixedStreamSpec {
        base: psdp_workloads::RequestStreamSpec {
            pool: 2,
            requests: 6,
            dim: 8,
            n: 5,
            zipf_s: 1.1,
            thresholds: 2,
            seed: 11,
        },
        mixed_pool: 1,
        optimize_share: 0.2,
        mixed_share: 0.2,
        eps: 0.2,
    });
    let text = psdp_workloads::stream_jsonl(&batch);
    let frames = psdp_workloads::stream_frames(&batch);
    let run_frames = || {
        let args =
            psdp_cli::args::Args::parse(&["serve".to_string(), "--listen".to_string()]).unwrap();
        let mut reader: &[u8] = &frames;
        let mut out: Vec<u8> = Vec::new();
        psdp_cli::serve::serve_listen_on(&args, &mut reader, &mut out).expect("listen runs");
        String::from_utf8_lossy(&out).into_owned()
    };
    let base = run_with_threads(1, || run_listen(&[], &text));
    for threads in [1usize, 4] {
        let from_text = run_with_threads(threads, || run_listen(&[], &text));
        let from_frames = run_with_threads(threads, run_frames);
        assert_eq!(base, from_text, "text stream changed at threads={threads}");
        assert_eq!(base, from_frames, "binary stream diverged from text at threads={threads}");
    }
    // Sanity: the schedule repeats instances, so the cross-format identity
    // covered memoized responses, not just cold solves.
    assert!(base.contains("\"memoized\":true") || base.contains("\"prep_reused\":true"), "{base}");
}

/// Serve the given per-client request streams over a loopback TCP socket
/// (`--bind tcp:127.0.0.1:0 --max-clients N`) and return each client's
/// response stream in client order. The server runs on the calling
/// thread inside the requested rayon pool — the same pool-capture point
/// a production `--bind` run uses.
fn run_socket(threads: usize, shards: &str, inputs: &[String]) -> Vec<String> {
    use std::io::{Read as _, Write as _};
    let listener =
        psdp_serve::Listener::bind(&psdp_serve::BindAddr::parse("tcp:127.0.0.1:0").unwrap())
            .unwrap();
    let addr = listener.local_addr_string().strip_prefix("tcp:").map(str::to_string).unwrap();
    let clients: Vec<_> = inputs
        .iter()
        .cloned()
        .map(|input| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut s = std::net::TcpStream::connect(&addr).unwrap();
                s.write_all(input.as_bytes()).unwrap();
                s.shutdown(std::net::Shutdown::Write).unwrap();
                let mut out = String::new();
                s.read_to_string(&mut out).unwrap();
                out
            })
        })
        .collect();
    let argv =
        ["serve", "--listen", "--shards", shards, "--max-clients", &inputs.len().to_string()];
    let args = psdp_cli::args::Args::parse(&argv.map(String::from)).unwrap();
    run_with_threads(threads, || {
        psdp_cli::serve::serve_listen_socket_on(&args, listener).expect("socket serve runs");
    });
    clients.into_iter().map(|h| h.join().unwrap()).collect()
}

/// Multi-client socket serving: each client's response stream over its
/// own connection must be **bitwise** identical to piping that client's
/// request stream over stdin, across rayon pool sizes {1, 4} × shard
/// counts {1, 4} × client counts {1, 4}. Per-client connections carry
/// stdin-equivalent parse state, and the per-client pools are disjoint,
/// so even the reuse telemetry matches — the transport cannot reach the
/// bytes (DESIGN.md §15).
#[test]
fn socket_responses_bitwise_match_stdin_per_client() {
    let spec = psdp_workloads::MixedStreamSpec {
        base: psdp_workloads::RequestStreamSpec {
            pool: 2,
            requests: 4,
            dim: 6,
            n: 4,
            zipf_s: 1.1,
            thresholds: 2,
            seed: 21,
        },
        mixed_pool: 1,
        optimize_share: 0.2,
        mixed_share: 0.2,
        eps: 0.2,
    };
    for clients in [1usize, 4] {
        let inputs: Vec<String> = psdp_workloads::multi_client_streams(&spec, clients)
            .iter()
            .map(psdp_workloads::stream_jsonl)
            .collect();
        let references: Vec<String> =
            inputs.iter().map(|i| run_with_threads(1, || run_listen(&[], i))).collect();
        for threads in [1usize, 4] {
            for shards in ["1", "4"] {
                let got = run_socket(threads, shards, &inputs);
                for (c, (got, want)) in got.iter().zip(&references).enumerate() {
                    assert_eq!(
                        got, want,
                        "client {c} socket bytes diverged at \
                         threads={threads} shards={shards} clients={clients}"
                    );
                }
            }
        }
    }
}

/// Warm-starting from a snapshot flips reuse telemetry but must leave
/// every result payload bitwise unchanged — the snapshot stores rebuild
/// inputs, and rebuilt solvers are the solvers.
#[test]
fn listen_snapshot_warm_start_is_payload_neutral() {
    let input = serve_batch_jsonl();
    let path = std::env::temp_dir().join(format!("psdp-det-snapshot-{}.txt", std::process::id()));
    let p = path.to_string_lossy().into_owned();
    let cold = run_listen(&["--snapshot", &p], &input);
    let warm = run_listen(&["--snapshot", &p], &input);
    let _ = std::fs::remove_file(&path);
    let strip = |s: &str| -> Vec<String> {
        s.lines().map(|l| l.split(",\"serve\":{").next().unwrap().to_string()).collect()
    };
    assert_eq!(strip(&cold), strip(&warm), "snapshot warm start changed a payload");
    assert!(warm.contains("\"tier\":\"prepared\""), "warm start never reused a solver: {warm}");
}

/// The pool registry is a `BTreeMap` keyed by thread count (audit rule D1:
/// no hash-order containers in deterministic modules), so the order in
/// which experiment code first requests pool sizes cannot perturb the
/// registry or any solve that runs afterwards. Scrambled acquisition must
/// hand back the identical cached pools and leave output bitwise unchanged.
#[test]
fn pool_registry_is_acquisition_order_invariant() {
    use psdp_parallel::pool_with_threads;
    let inst = instance(13);
    let opts = ApproxOptions::practical(0.15);
    let before = run_with_threads(2, || solve_packing(&inst, &opts).unwrap());
    for t in [4usize, 1, 3, 2, 4, 1] {
        let a = pool_with_threads(t);
        let b = pool_with_threads(t);
        assert!(std::sync::Arc::ptr_eq(&a, &b), "pool of size {t} was rebuilt, not cached");
    }
    let after = run_with_threads(2, || solve_packing(&inst, &opts).unwrap());
    assert_eq!(before.value_lower.to_bits(), after.value_lower.to_bits());
    assert_eq!(before.value_upper.to_bits(), after.value_upper.to_bits());
    assert_eq!(before.decision_calls, after.decision_calls);
}

/// Workload generators are stable across calls and processes (fixed
/// hashing, no global RNG state).
#[test]
fn generators_are_stable() {
    let a = beamforming_sdp(&Beamforming::default());
    let b = beamforming_sdp(&Beamforming::default());
    for (x, y) in a.constraints.iter().zip(&b.constraints) {
        assert_eq!(x.to_dense().as_slice(), y.to_dense().as_slice());
    }
    let r1 = solve_packing(&instance(40), &ApproxOptions::practical(0.15)).unwrap();
    let r2 = solve_packing(&instance(40), &ApproxOptions::practical(0.15)).unwrap();
    assert_eq!(r1.decision_calls, r2.decision_calls);
    assert!((r1.value_lower - r2.value_lower).abs() < 1e-12);
    assert!((r1.value_upper - r2.value_upper).abs() < 1e-12);
}
