//! Reproducibility guarantees: identical seeds ⇒ identical outputs, and
//! certificates are thread-count independent (tolerance-based, not bitwise,
//! across pools — bitwise within one configuration).

use psdp_core::{
    decision_psdp, solve_packing, verify_dual, ApproxOptions, DecisionOptions, EngineKind, Outcome,
    PackingInstance,
};
use psdp_parallel::run_with_threads;
use psdp_workloads::{beamforming_sdp, random_factorized, Beamforming, RandomFactorized};

fn instance(seed: u64) -> PackingInstance {
    PackingInstance::new(random_factorized(&RandomFactorized {
        dim: 10,
        n: 6,
        rank: 2,
        nnz_per_col: 3,
        width: 1.0,
        seed,
    }))
    .unwrap()
    .scaled(0.5)
}

/// Bitwise-identical solves for identical configuration (exact engine: no
/// randomness at all; sketched engine: seeded sketches).
#[test]
fn identical_runs_identical_outputs() {
    let inst = instance(17);
    for kind in [EngineKind::Exact, EngineKind::TaylorJl { eps: 0.2, sketch_const: 4.0 }] {
        let opts = DecisionOptions::practical(0.2).with_engine(kind).with_seed(9);
        let a = decision_psdp(&inst, &opts).unwrap();
        let b = decision_psdp(&inst, &opts).unwrap();
        assert_eq!(a.stats.iterations, b.stats.iterations, "{kind:?}");
        match (&a.outcome, &b.outcome) {
            (Outcome::Dual(x), Outcome::Dual(y)) => assert_eq!(x.x, y.x, "{kind:?}"),
            (Outcome::Primal(x), Outcome::Primal(y)) => {
                assert_eq!(x.constraint_dots, y.constraint_dots, "{kind:?}")
            }
            _ => panic!("{kind:?}: outcome side differed between identical runs"),
        }
    }
}

/// Different sketch seeds may change the trajectory but never the
/// certificate validity.
#[test]
fn sketch_seed_never_breaks_certificates() {
    let inst = instance(23);
    for seed in 0..6u64 {
        let opts = DecisionOptions::practical(0.2)
            .with_engine(EngineKind::TaylorJl { eps: 0.2, sketch_const: 4.0 })
            .with_seed(seed);
        let res = decision_psdp(&inst, &opts).unwrap();
        if let Outcome::Dual(d) = &res.outcome {
            assert!(verify_dual(&inst, d, 1e-7).feasible, "seed {seed}");
        }
    }
}

/// Thread count must not change the certified outcome (the reductions are
/// deterministic in shape; tiny float reassociation differences stay within
/// certificate tolerance).
#[test]
fn thread_count_invariant_certificates() {
    let inst = instance(31);
    let opts = DecisionOptions::practical(0.2);
    let r1 = run_with_threads(1, || decision_psdp(&inst, &opts).unwrap());
    let r2 = run_with_threads(2, || decision_psdp(&inst, &opts).unwrap());
    assert_eq!(r1.stats.iterations, r2.stats.iterations);
    match (&r1.outcome, &r2.outcome) {
        (Outcome::Dual(a), Outcome::Dual(b)) => {
            assert!((a.value - b.value).abs() < 1e-9 * a.value.max(1.0));
            assert!(verify_dual(&inst, a, 1e-7).feasible);
            assert!(verify_dual(&inst, b, 1e-7).feasible);
        }
        (Outcome::Primal(a), Outcome::Primal(b)) => {
            assert!((a.min_dot - b.min_dot).abs() < 1e-9 * a.min_dot.max(1.0));
        }
        _ => panic!("outcome side changed with thread count"),
    }
}

/// Workload generators are stable across calls and processes (fixed
/// hashing, no global RNG state).
#[test]
fn generators_are_stable() {
    let a = beamforming_sdp(&Beamforming::default());
    let b = beamforming_sdp(&Beamforming::default());
    for (x, y) in a.constraints.iter().zip(&b.constraints) {
        assert_eq!(x.to_dense().as_slice(), y.to_dense().as_slice());
    }
    let r1 = solve_packing(&instance(40), &ApproxOptions::practical(0.15)).unwrap();
    let r2 = solve_packing(&instance(40), &ApproxOptions::practical(0.15)).unwrap();
    assert_eq!(r1.decision_calls, r2.decision_calls);
    assert!((r1.value_lower - r2.value_lower).abs() < 1e-12);
    assert!((r1.value_upper - r2.value_upper).abs() < 1e-12);
}
