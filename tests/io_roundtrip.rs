//! Text-format round-trip properties and the malformed-input corpus.
//!
//! Two guarantees for `psdp_core::io`:
//!
//! 1. **Write→read→write is a fixpoint.** Values serialize through `{:e}`
//!    (exact round-trip), so parsing a written instance and writing it
//!    again must reproduce the bytes — and the parsed instance must match
//!    the original matrix-for-matrix. Property-tested over the shared
//!    `psdp-test-support` families plus a hand-built instance covering
//!    all four storage kinds.
//! 2. **Malformed input errors, never panics.** Every parser error path
//!    has a checked-in fixture under `tests/fixtures/io_corpus/`; both
//!    readers must return `Err` on every one of them (a packing file is
//!    malformed for the mixed reader by header and vice versa, so the
//!    assertion is symmetric).
//!
//! The same two guarantees hold for the `psdp-bin-1` binary format: the
//! fixpoint helpers additionally assert text→binary→text byte losslessness
//! (plus hash agreement between the header and the parse-time hash), and a
//! parallel `.psdpb` corpus drives both binary readers through every
//! header/record/checksum guard.

use proptest::prelude::*;
use psdp_core::{
    mixed_content_hash, mixed_structural_eq, packing_content_hash, packing_structural_eq,
    peek_content_hash, read_instance, read_instance_bin, read_mixed_instance,
    read_mixed_instance_bin, write_instance, write_instance_bin, write_mixed_instance,
    write_mixed_instance_bin, MixedInstance, PackingInstance,
};
use psdp_sparse::{Csr, FactorPsd, PsdMatrix};
use psdp_test_support::{arb_factorized_instance, arb_mixed_diagonal, arb_sparse_graph_instance};

fn assert_packing_fixpoint(inst: &PackingInstance) {
    let text1 = write_instance(inst);
    let back = read_instance(&text1).expect("written instance must parse");
    assert_eq!(back.n(), inst.n());
    assert_eq!(back.dim(), inst.dim());
    for (a, b) in inst.mats().iter().zip(back.mats()) {
        assert_eq!(a.to_dense().as_slice(), b.to_dense().as_slice(), "matrix drift");
    }
    let text2 = write_instance(&back);
    assert_eq!(text1, text2, "write→read→write is not a fixpoint");

    // Binary leg: text→binary→text is byte-lossless, the decoded instance
    // is bit-identical, and the header hash matches the parse-time hash.
    let bin = write_instance_bin(&back);
    let (from_bin, hash) = read_instance_bin(&bin).expect("written binary must parse");
    assert!(packing_structural_eq(&back, &from_bin), "binary decode drifted");
    assert_eq!(hash, packing_content_hash(&back), "header hash != parse-time hash");
    assert_eq!(peek_content_hash(&bin), Some(hash), "peeked hash != verified hash");
    assert_eq!(write_instance_bin(&from_bin), bin, "bin→read→bin is not a fixpoint");
    assert_eq!(write_instance(&from_bin), text1, "text→binary→text is not a fixpoint");
}

fn assert_mixed_fixpoint(inst: &MixedInstance) {
    let text1 = write_mixed_instance(inst);
    let back = read_mixed_instance(&text1).expect("written instance must parse");
    assert_eq!(back.n(), inst.n());
    assert_eq!(back.pack_dim(), inst.pack_dim());
    assert_eq!(back.cover_dim(), inst.cover_dim());
    for (a, b) in inst.pack().mats().iter().zip(back.pack().mats()) {
        assert_eq!(a.to_dense().as_slice(), b.to_dense().as_slice(), "pack matrix drift");
    }
    for (a, b) in inst.cover().mats().iter().zip(back.cover().mats()) {
        assert_eq!(a.to_dense().as_slice(), b.to_dense().as_slice(), "cover matrix drift");
    }
    let text2 = write_mixed_instance(&back);
    assert_eq!(text1, text2, "mixed write→read→write is not a fixpoint");

    let bin = write_mixed_instance_bin(&back);
    let (from_bin, hash) = read_mixed_instance_bin(&bin).expect("written binary must parse");
    assert!(mixed_structural_eq(&back, &from_bin), "mixed binary decode drifted");
    assert_eq!(hash, mixed_content_hash(&back), "mixed header hash != parse-time hash");
    assert_eq!(peek_content_hash(&bin), Some(hash), "peeked hash != verified hash");
    assert_eq!(write_mixed_instance_bin(&from_bin), bin, "mixed bin fixpoint broken");
    assert_eq!(write_mixed_instance(&from_bin), text1, "mixed text→binary→text broken");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Factorized instances: write→read→write fixpoint.
    #[test]
    fn packing_fixpoint_on_factorized(inst in arb_factorized_instance()) {
        assert_packing_fixpoint(&inst);
    }

    /// Sparse CSR edge-Laplacian instances: fixpoint.
    #[test]
    fn packing_fixpoint_on_sparse(inst in arb_sparse_graph_instance()) {
        assert_packing_fixpoint(&inst);
    }

    /// Diagonal-embedded mixed instances: fixpoint.
    #[test]
    fn mixed_fixpoint_on_diagonal(case in arb_mixed_diagonal()) {
        assert_mixed_fixpoint(&case.inst);
    }
}

/// One instance exercising all four storage kinds (the proptest families
/// cover diagonal/factor/sparse; dense blocks are rare in generators).
#[test]
fn fixpoint_covers_every_storage_kind() {
    let diag = PsdMatrix::Diagonal(vec![1.5, 0.0, 0.5]);
    let factor = PsdMatrix::Factor(FactorPsd::new(Csr::from_triplets(
        3,
        2,
        &[(0, 0, 1.0), (1, 1, 2.0), (2, 0, -1.0)],
    )));
    let sparse = PsdMatrix::Sparse(Csr::from_triplets(
        3,
        3,
        &[(0, 0, 2.0), (0, 2, -1.0), (2, 0, -1.0), (2, 2, 1.0)],
    ));
    let mut d = psdp_linalg::Mat::zeros(3, 3);
    d.rank1_update(0.7, &[1.0, 0.5, 0.25]);
    d.add_diag(0.125);
    let inst =
        PackingInstance::new(vec![diag, factor, sparse, PsdMatrix::Dense(d.clone())]).unwrap();
    assert_packing_fixpoint(&inst);

    let mixed = MixedInstance::new(
        inst.mats().to_vec(),
        vec![
            PsdMatrix::Diagonal(vec![1.0, 0.5]),
            PsdMatrix::Sparse(Csr::from_triplets(
                2,
                2,
                &[(0, 0, 1.0), (0, 1, -0.5), (1, 0, -0.5), (1, 1, 1.0)],
            )),
            PsdMatrix::Diagonal(vec![0.25, 0.25]),
            PsdMatrix::Diagonal(vec![2.0, 0.0]),
        ],
    )
    .unwrap();
    assert_mixed_fixpoint(&mixed);
}

/// Every checked-in malformed fixture must make BOTH readers return `Err`
/// without panicking — packing fixtures fail the mixed reader on the
/// header and vice versa, so the corpus is one pool.
#[test]
fn malformed_corpus_errors_never_panics() {
    let dir = format!("{}/../../tests/fixtures/io_corpus", env!("CARGO_MANIFEST_DIR"));
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {dir}: {e}"))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "psdp"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 30, "corpus suspiciously small: {} files", paths.len());
    for path in paths {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(&path).expect("fixture readable");
        let as_packing = std::panic::catch_unwind(|| read_instance(&text));
        let as_mixed = std::panic::catch_unwind(|| read_mixed_instance(&text));
        match as_packing {
            Ok(result) => assert!(result.is_err(), "{name}: packing reader accepted it"),
            Err(_) => panic!("{name}: packing reader panicked"),
        }
        match as_mixed {
            Ok(result) => assert!(result.is_err(), "{name}: mixed reader accepted it"),
            Err(_) => panic!("{name}: mixed reader panicked"),
        }
    }
}

/// The corpus names its cases; spot-check that representative fixtures
/// fail for the *intended* reason (line-anchored messages).
#[test]
fn corpus_errors_are_line_anchored_and_specific() {
    let dir = format!("{}/../../tests/fixtures/io_corpus", env!("CARGO_MANIFEST_DIR"));
    let read = |name: &str| std::fs::read_to_string(format!("{dir}/{name}")).expect("fixture");
    let cases = [
        ("05_dim_exceeds_limit.psdp", "exceeds limit"),
        ("09_wrong_constraint_index.psdp", "expected 0"),
        ("10_unknown_kind.psdp", "unknown constraint kind"),
        ("14_diagonal_out_of_range.psdp", "out of range"),
        ("21_huge_sparse_nnz_truncated.psdp", "lines remain"),
        ("24_dense_row_wrong_length.psdp", "dense row has"),
        ("26_wrong_end_token.psdp", "expected `end`"),
        ("37_mixed_trailing_garbage.psdp", "trailing content"),
    ];
    for (name, needle) in cases {
        let text = read(name);
        let err = if name.starts_with("3") && name.contains("mixed") {
            read_mixed_instance(&text).unwrap_err().to_string()
        } else {
            read_instance(&text).unwrap_err().to_string()
        };
        assert!(err.contains(needle), "{name}: error `{err}` missing `{needle}`");
        assert!(err.contains("line"), "{name}: error `{err}` not line-anchored");
    }
}

/// Every malformed `psdp-bin-1` fixture (`.psdpb`) must make BOTH binary
/// readers return `Err` without panicking. Fixtures with a target deeper
/// than the checksum carry *consistent* trailers/content hashes so the
/// intended guard is the one that fires.
#[test]
fn malformed_binary_corpus_errors_never_panics() {
    let dir = format!("{}/../../tests/fixtures/io_corpus", env!("CARGO_MANIFEST_DIR"));
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {dir}: {e}"))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "psdpb"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 15, "binary corpus suspiciously small: {} files", paths.len());
    for path in paths {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let bytes = std::fs::read(&path).expect("fixture readable");
        let as_packing = std::panic::catch_unwind(|| read_instance_bin(&bytes));
        let as_mixed = std::panic::catch_unwind(|| read_mixed_instance_bin(&bytes));
        match as_packing {
            Ok(result) => assert!(result.is_err(), "{name}: binary packing reader accepted it"),
            Err(_) => panic!("{name}: binary packing reader panicked"),
        }
        match as_mixed {
            Ok(result) => assert!(result.is_err(), "{name}: binary mixed reader accepted it"),
            Err(_) => panic!("{name}: binary mixed reader panicked"),
        }
    }
}

/// Spot-check that representative binary fixtures fail for the *intended*
/// reason, with byte-offset-anchored messages.
#[test]
fn binary_corpus_errors_are_offset_anchored_and_specific() {
    let dir = format!("{}/../../tests/fixtures/io_corpus", env!("CARGO_MANIFEST_DIR"));
    let read = |name: &str| std::fs::read(format!("{dir}/{name}")).expect("fixture");
    let packing_cases = [
        ("42_bin_bad_magic.psdpb", "bad magic"),
        ("43_bin_bad_version.psdpb", "unsupported version"),
        ("45_bin_unknown_family.psdpb", "not a packing instance"),
        ("46_bin_dim_overflow.psdpb", "exceeds limit"),
        ("48_bin_record_len_overrun.psdpb", "remain"),
        ("50_bin_bad_record_kind.psdpb", "unknown record kind"),
        ("51_bin_diag_nonincreasing.psdpb", "strictly increasing"),
        ("53_bin_trailer_mismatch.psdpb", "checksum mismatch"),
        ("54_bin_content_hash_mismatch.psdpb", "content hash mismatch"),
        ("55_bin_trailing_bytes.psdpb", "trailing bytes"),
        ("56_bin_factor_rank_zero.psdpb", "factor rank"),
        ("57_bin_dense_wrong_len.psdpb", "dense block"),
    ];
    for (name, needle) in packing_cases {
        let err = read_instance_bin(&read(name)).unwrap_err().to_string();
        assert!(err.contains(needle), "{name}: error `{err}` missing `{needle}`");
        assert!(err.contains("byte"), "{name}: error `{err}` not byte-anchored");
    }
    let err = read_mixed_instance_bin(&read("61_bin_mixed_content_hash_mismatch.psdpb"))
        .unwrap_err()
        .to_string();
    assert!(err.contains("content hash mismatch"), "{err}");
    let err = read_mixed_instance_bin(&read("62_bin_mixed_count_overflow.psdpb"))
        .unwrap_err()
        .to_string();
    assert!(err.contains("exceeds limit"), "{err}");
}

/// Absurd declared sizes must fail fast on validation, not inside an
/// allocator (the `MAX_DIM` / preallocation guards).
#[test]
fn absurd_headers_fail_fast() {
    let t0 = std::time::Instant::now();
    let bad_dim = "psdp 1\ndim 888888888888888\nconstraints 1\nconstraint 0 dense\nend\n";
    assert!(read_instance(bad_dim).is_err());
    let bad_nnz =
        "psdp 1\ndim 4\nconstraints 1\nconstraint 0 sparse 98765432109876\n0 0 1.0\nend\n";
    assert!(read_instance(bad_nnz).is_err());
    assert!(t0.elapsed() < std::time::Duration::from_secs(5), "guards did not fail fast");
}
