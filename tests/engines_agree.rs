//! Engine- and storage-consistency tests: the exact, Taylor, and Taylor+JL
//! engines must drive the solver to the same certified answers (Theorem 4.1
//! says the approximate primitive suffices), and the four constraint
//! storage formats (dense / sparse CSR / factorized / diagonal) must be
//! interchangeable — storage affects cost, never results.

use psdp_core::{
    decision_psdp, solve_packing, verify_dual, verify_primal, ApproxOptions, DecisionOptions,
    EngineKind, Outcome, PackingInstance, PsiMaintainer, Solver,
};
use psdp_expdot::{exp_dot_exact, Engine};
use psdp_linalg::Mat;
use psdp_sparse::{Csr, PsdMatrix};
use psdp_test_support::{det_stream, factorized_instance, FactorizedSpec};
use psdp_workloads::{edge_packing, edge_packing_sparse, gnp};

fn instance(seed: u64) -> PackingInstance {
    factorized_instance(&FactorizedSpec::new(10, 7, seed).with_width(1.5))
}

const ENGINES: [EngineKind; 4] = [
    EngineKind::Exact,
    EngineKind::Taylor { eps: 0.05 },
    EngineKind::TaylorJl { eps: 0.15, sketch_const: 6.0 },
    EngineKind::Expv { eps: 0.15 },
];

/// All engines certify the same side with comparable values.
#[test]
fn engines_agree_on_outcome_and_value() {
    for seed in [1u64, 5] {
        let inst = instance(seed);
        let mut dual_values = Vec::new();
        for kind in ENGINES {
            let opts = DecisionOptions::practical(0.2).with_engine(kind).with_seed(3);
            let res = decision_psdp(&inst, &opts).unwrap();
            match &res.outcome {
                Outcome::Dual(d) => {
                    assert!(verify_dual(&inst, d, 1e-7).feasible, "{kind:?} dual infeasible");
                    dual_values.push(d.value);
                }
                Outcome::Primal(p) => {
                    assert!(
                        verify_primal(&inst, p, 5e-2).feasible,
                        "{kind:?} primal infeasible: {p:?}"
                    );
                }
            }
        }
        // If several engines found duals, their values should be close
        // (within the combined approximation slack).
        if dual_values.len() >= 2 {
            let hi = dual_values.iter().cloned().fold(f64::MIN, f64::max);
            let lo = dual_values.iter().cloned().fold(f64::MAX, f64::min);
            assert!(hi / lo < 1.35, "dual values spread too wide: {dual_values:?}");
        }
    }
}

/// Direct primitive-level agreement on a shared Φ: Taylor within its ε,
/// sketched within a generous statistical band.
#[test]
fn primitive_level_agreement() {
    let inst = instance(2);
    let mats = inst.mats();
    let mut phi = Mat::zeros(inst.dim(), inst.dim());
    for (i, a) in mats.iter().enumerate() {
        a.add_scaled_into(&mut phi, 0.2 + 0.1 * i as f64);
    }
    phi.symmetrize();
    let kappa = psdp_linalg::lambda_max_upper_bound(&phi);

    let exact: Vec<f64> = mats.iter().map(|a| exp_dot_exact(&phi, a).unwrap()).collect();

    let taylor = Engine::new(EngineKind::Taylor { eps: 0.05 }, mats, 0).unwrap();
    let t = taylor.compute(&phi, kappa, mats, 1).unwrap();
    for (g, e) in t.dots.iter().zip(&exact) {
        assert!(*g <= e * (1.0 + 1e-9) && *g >= e * (1.0 - 0.05), "taylor {g} vs {e}");
    }

    let jl = Engine::new(EngineKind::TaylorJl { eps: 0.15, sketch_const: 8.0 }, mats, 7).unwrap();
    let j = jl.compute(&phi, kappa, mats, 1).unwrap();
    for (g, e) in j.dots.iter().zip(&exact) {
        assert!((g - e).abs() < 0.3 * e.max(1e-9), "jl {g} vs {e}");
    }

    // The expm-action engine's dots are sketch-free: they must land on the
    // exact values up to the kernel's 1e-9 floor (plus factorization slack),
    // an order tighter than either Taylor band.
    let expv = Engine::new(EngineKind::Expv { eps: 0.15 }, mats, 7).unwrap();
    let v = expv.compute(&phi, kappa, mats, 1).unwrap();
    let scale = v.log_scale.exp();
    for (g, e) in v.dots.iter().zip(&exact) {
        assert!((g * scale - e).abs() < 1e-6 * e.max(1.0), "expv {} vs {e}", g * scale);
    }
}

/// Dense, sparse-CSR, and factorized storage of the *same* constraint set
/// must produce the same `DecisionResult`: same certified side, same
/// iteration count, and values agreeing to floating-point accuracy.
#[test]
fn storage_formats_agree_on_decision_result() {
    let graph = gnp(12, 0.5, 11);
    let factorized = edge_packing(&graph);
    let sparse = edge_packing_sparse(&graph);
    let dense: Vec<PsdMatrix> = factorized.iter().map(|a| PsdMatrix::Dense(a.to_dense())).collect();

    let opts = DecisionOptions::practical(0.2);
    let mut results = Vec::new();
    for mats in [dense, sparse, factorized] {
        let inst = PackingInstance::new(mats).unwrap().scaled(0.25);
        results.push((decision_psdp(&inst, &opts).unwrap(), inst));
    }

    let (r0, _) = &results[0];
    for (r, inst) in &results[1..] {
        assert_eq!(r.stats.iterations, r0.stats.iterations, "iteration counts diverged");
        assert_eq!(r.stats.exit, r0.stats.exit, "exit reasons diverged");
        match (&r.outcome, &r0.outcome) {
            (Outcome::Dual(d), Outcome::Dual(d0)) => {
                assert!(
                    (d.value - d0.value).abs() <= 1e-6 * d0.value.abs().max(1.0),
                    "dual values diverged: {} vs {}",
                    d.value,
                    d0.value
                );
                for (a, b) in d.x.iter().zip(&d0.x) {
                    assert!((a - b).abs() <= 1e-6 * b.abs().max(1e-12), "{a} vs {b}");
                }
                assert!(verify_dual(inst, d, 1e-7).feasible);
            }
            (Outcome::Primal(p), Outcome::Primal(p0)) => {
                assert!(
                    (p.min_dot - p0.min_dot).abs() <= 1e-6 * p0.min_dot.abs().max(1.0),
                    "primal min dots diverged: {} vs {}",
                    p.min_dot,
                    p0.min_dot
                );
            }
            (a, b) => panic!("outcome sides diverged: {a:?} vs {b:?}"),
        }
    }
}

/// Deterministic multi-round property: however the update schedule mixes
/// storage kinds, batch sizes, and step magnitudes, the incrementally
/// maintained Ψ stays within floating-point tolerance of a from-scratch
/// `weighted_sum` rebuild.
#[test]
fn incremental_psi_tracks_rebuild_across_schedules() {
    for seed in [3u64, 17, 42] {
        let graph = gnp(10, 0.5, seed);
        let mut mats = edge_packing_sparse(&graph);
        // Mix in other storage kinds so every scatter path is exercised.
        mats.extend(edge_packing(&graph).into_iter().take(4));
        mats.push(PsdMatrix::Diagonal((0..10).map(|i| 0.1 + (i % 3) as f64).collect()));
        mats.push(PsdMatrix::Sparse(Csr::from_triplets(
            10,
            10,
            &[(0, 0, 1.0), (0, 9, 0.5), (9, 0, 0.5), (9, 9, 2.0)],
        )));
        let inst = PackingInstance::new(mats).unwrap();
        let n = inst.n();

        let mut x: Vec<f64> = (0..n).map(|i| 0.01 * (1 + (i * seed as usize) % 5) as f64).collect();
        let mut psi = PsiMaintainer::new(&inst, &x, 0);
        let mut next = det_stream(seed);
        for round in 0..300 {
            // Deterministic pseudo-random batch of 1..=5 coordinates.
            let mut deltas = Vec::new();
            let batch = 1 + (round % 5);
            for _ in 0..batch {
                let state = next();
                let i = (state >> 33) as usize % n;
                let d = 1e-3 * ((state >> 20) % 100) as f64;
                x[i] += d;
                deltas.push((i, d));
            }
            psi.apply_updates(&deltas);
        }
        let fresh = inst.weighted_sum(&x);
        let scale = fresh.max_abs().max(1e-300);
        for (a, b) in psi.matrix().as_slice().iter().zip(fresh.as_slice()) {
            assert!((a - b).abs() <= 1e-11 * scale, "seed {seed}: {a} vs {b}");
        }
        assert!(psi.matrix().asymmetry() <= 1e-12 * scale);
    }
}

/// The Solver/Session API and the legacy free functions are the same code
/// path: `decision_psdp` must equal `Session::solve(1.0)` bitwise, and
/// `solve_packing` must equal `Session::optimize` bitwise, for every
/// engine.
#[test]
fn solver_api_matches_legacy_free_functions() {
    for seed in [1u64, 5] {
        let inst = instance(seed);
        for kind in ENGINES {
            let opts = DecisionOptions::practical(0.2).with_engine(kind).with_seed(3);
            let legacy = decision_psdp(&inst, &opts).unwrap();
            let solver = Solver::builder(&inst).options(opts).build().unwrap();
            let direct = solver.session().solve(1.0).unwrap();
            assert_eq!(legacy.stats.iterations, direct.stats.iterations, "{kind:?}");
            assert_eq!(legacy.stats.exit, direct.stats.exit, "{kind:?}");
            match (&legacy.outcome, &direct.outcome) {
                (Outcome::Dual(a), Outcome::Dual(b)) => {
                    assert_eq!(a.x, b.x, "{kind:?}: dual iterates diverged");
                    assert_eq!(a.value.to_bits(), b.value.to_bits(), "{kind:?}");
                }
                (Outcome::Primal(a), Outcome::Primal(b)) => {
                    assert_eq!(a.constraint_dots, b.constraint_dots, "{kind:?}");
                    assert_eq!(a.min_dot.to_bits(), b.min_dot.to_bits(), "{kind:?}");
                }
                _ => panic!("{kind:?}: outcome sides diverged between APIs"),
            }
        }

        // Optimization: the wrapper and a hand-held session must agree.
        let approx = ApproxOptions::practical(0.15);
        let legacy = solve_packing(&inst, &approx).unwrap();
        let solver = Solver::builder(&inst).options(approx.decision).build().unwrap();
        let direct = solver.session().optimize(&approx).unwrap();
        assert_eq!(legacy.value_lower.to_bits(), direct.value_lower.to_bits());
        assert_eq!(legacy.value_upper.to_bits(), direct.value_upper.to_bits());
        assert_eq!(legacy.decision_calls, direct.decision_calls);
        assert_eq!(legacy.total_iterations, direct.total_iterations);
    }
}

/// Verdict agreement on the E8/E9 experiment workloads: bisection under the
/// expm-action engine must certify the same bracket as the exact engine —
/// overlapping certified intervals of the same relative width — on the
/// diagonal-LP family (E8) and the paper's Figure 1 ellipse-packing
/// instance (E9).
#[test]
fn expv_certifies_same_brackets_as_exact_on_e8_e9_workloads() {
    let mut instances: Vec<(String, PackingInstance)> = Vec::new();
    for seed in [1u64, 2] {
        let mats = psdp_workloads::random_lp_diagonal(8, 6, 0.6, seed);
        instances.push((format!("diagonal(s{seed})"), PackingInstance::new(mats).unwrap()));
    }
    instances.push((
        "figure1".into(),
        PackingInstance::new(psdp_workloads::figure1_instance()).unwrap(),
    ));
    instances.push((
        "edge_packing".into(),
        PackingInstance::new(edge_packing(&gnp(8, 0.4, 7))).unwrap(),
    ));

    let eps = 0.1;
    for (name, inst) in &instances {
        let exact_opts = ApproxOptions::practical(eps);
        let mut expv_opts = ApproxOptions::practical(eps);
        expv_opts.decision =
            expv_opts.decision.with_engine(EngineKind::Expv { eps: 0.05 }).with_seed(3);

        let re = solve_packing(inst, &exact_opts).unwrap();
        let rv = solve_packing(inst, &expv_opts).unwrap();
        assert!(re.converged && rv.converged, "{name}: a bisection failed to converge");
        // Both brackets are *certified* (every bound comes from a verified
        // certificate), so they must overlap…
        assert!(
            rv.value_lower <= re.value_upper && re.value_lower <= rv.value_upper,
            "{name}: disjoint certified brackets: exact [{}, {}] vs expv [{}, {}]",
            re.value_lower,
            re.value_upper,
            rv.value_lower,
            rv.value_upper
        );
        // …and agree on the optimum to the combined bisection accuracy.
        let mid_e = 0.5 * (re.value_lower + re.value_upper);
        let mid_v = 0.5 * (rv.value_lower + rv.value_upper);
        assert!(
            (mid_e - mid_v).abs() <= 2.0 * eps * mid_e.max(1e-12),
            "{name}: bracket centers diverged: {mid_e} vs {mid_v}"
        );
        // The duals each engine certifies must verify on the instance.
        if let (Some(de), Some(dv)) = (&re.best_dual, &rv.best_dual) {
            assert!(verify_dual(inst, de, 1e-7).feasible, "{name}: exact dual");
            assert!(verify_dual(inst, dv, 1e-7).feasible, "{name}: expv dual");
        }
    }
}

/// The Taylor engine's reported degree respects the Lemma 4.2 rule and
/// shrinks when κ shrinks (adaptive degree selection).
#[test]
fn taylor_degree_adapts_to_kappa() {
    let inst = instance(3);
    let mats = inst.mats();
    let mut phi = inst.weighted_sum(&vec![0.01; inst.n()]);
    phi.symmetrize();
    let small_kappa = psdp_linalg::lambda_max_upper_bound(&phi);

    let engine = Engine::new(EngineKind::Taylor { eps: 0.1 }, mats, 0).unwrap();
    let small = engine.compute(&phi, small_kappa, mats, 1).unwrap();

    let mut big_phi = phi.clone();
    big_phi.scale(50.0 / small_kappa.max(1e-12));
    let big = engine.compute(&big_phi, 50.0, mats, 1).unwrap();

    assert!(small.degree < big.degree, "degree did not adapt: {} vs {}", small.degree, big.degree);
    // Lemma 4.2 lower bound on the degree: at least ln(2/eps').
    assert!(small.degree >= 1);
    assert!(big.degree as f64 >= std::f64::consts::E.powi(2) * 25.0 * 0.99);
}
