//! Engine-consistency tests: the exact, Taylor, and Taylor+JL engines must
//! drive the solver to the same certified answers (Theorem 4.1 says the
//! approximate primitive suffices; these tests check that claim end to end).

use psdp_core::{
    decision_psdp, verify_dual, verify_primal, DecisionOptions, EngineKind, Outcome,
    PackingInstance,
};
use psdp_expdot::{exp_dot_exact, Engine};
use psdp_linalg::Mat;
use psdp_workloads::{random_factorized, RandomFactorized};

fn instance(seed: u64) -> PackingInstance {
    PackingInstance::new(random_factorized(&RandomFactorized {
        dim: 10,
        n: 7,
        rank: 2,
        nnz_per_col: 3,
        width: 1.5,
        seed,
    }))
    .unwrap()
    .scaled(0.5)
}

const ENGINES: [EngineKind; 3] = [
    EngineKind::Exact,
    EngineKind::Taylor { eps: 0.05 },
    EngineKind::TaylorJl { eps: 0.15, sketch_const: 6.0 },
];

/// All engines certify the same side with comparable values.
#[test]
fn engines_agree_on_outcome_and_value() {
    for seed in [1u64, 5] {
        let inst = instance(seed);
        let mut dual_values = Vec::new();
        for kind in ENGINES {
            let opts = DecisionOptions::practical(0.2).with_engine(kind).with_seed(3);
            let res = decision_psdp(&inst, &opts).unwrap();
            match &res.outcome {
                Outcome::Dual(d) => {
                    assert!(verify_dual(&inst, d, 1e-7).feasible, "{kind:?} dual infeasible");
                    dual_values.push(d.value);
                }
                Outcome::Primal(p) => {
                    assert!(
                        verify_primal(&inst, p, 5e-2).feasible,
                        "{kind:?} primal infeasible: {p:?}"
                    );
                }
            }
        }
        // If several engines found duals, their values should be close
        // (within the combined approximation slack).
        if dual_values.len() >= 2 {
            let hi = dual_values.iter().cloned().fold(f64::MIN, f64::max);
            let lo = dual_values.iter().cloned().fold(f64::MAX, f64::min);
            assert!(hi / lo < 1.35, "dual values spread too wide: {dual_values:?}");
        }
    }
}

/// Direct primitive-level agreement on a shared Φ: Taylor within its ε,
/// sketched within a generous statistical band.
#[test]
fn primitive_level_agreement() {
    let inst = instance(2);
    let mats = inst.mats();
    let mut phi = Mat::zeros(inst.dim(), inst.dim());
    for (i, a) in mats.iter().enumerate() {
        a.add_scaled_into(&mut phi, 0.2 + 0.1 * i as f64);
    }
    phi.symmetrize();
    let kappa = psdp_linalg::lambda_max_upper_bound(&phi);

    let exact: Vec<f64> = mats.iter().map(|a| exp_dot_exact(&phi, a).unwrap()).collect();

    let taylor = Engine::new(EngineKind::Taylor { eps: 0.05 }, mats, 0).unwrap();
    let t = taylor.compute(&phi, kappa, mats, 1).unwrap();
    for (g, e) in t.dots.iter().zip(&exact) {
        assert!(*g <= e * (1.0 + 1e-9) && *g >= e * (1.0 - 0.05), "taylor {g} vs {e}");
    }

    let jl = Engine::new(EngineKind::TaylorJl { eps: 0.15, sketch_const: 8.0 }, mats, 7).unwrap();
    let j = jl.compute(&phi, kappa, mats, 1).unwrap();
    for (g, e) in j.dots.iter().zip(&exact) {
        assert!((g - e).abs() < 0.3 * e.max(1e-9), "jl {g} vs {e}");
    }
}

/// The Taylor engine's reported degree respects the Lemma 4.2 rule and
/// shrinks when κ shrinks (adaptive degree selection).
#[test]
fn taylor_degree_adapts_to_kappa() {
    let inst = instance(3);
    let mats = inst.mats();
    let mut phi = inst.weighted_sum(&vec![0.01; inst.n()]);
    phi.symmetrize();
    let small_kappa = psdp_linalg::lambda_max_upper_bound(&phi);

    let engine = Engine::new(EngineKind::Taylor { eps: 0.1 }, mats, 0).unwrap();
    let small = engine.compute(&phi, small_kappa, mats, 1).unwrap();

    let mut big_phi = phi.clone();
    big_phi.scale(50.0 / small_kappa.max(1e-12));
    let big = engine.compute(&big_phi, 50.0, mats, 1).unwrap();

    assert!(small.degree < big.degree, "degree did not adapt: {} vs {}", small.degree, big.degree);
    // Lemma 4.2 lower bound on the degree: at least ln(2/eps').
    assert!(small.degree >= 1);
    assert!(big.degree as f64 >= std::f64::consts::E.powi(2) * 25.0 * 0.99);
}
