//! Kernel-equivalence gate for the expm stack (DESIGN.md §12).
//!
//! The PR-7 kernel layer replaced the naive GEMM with a blocked/panelized
//! kernel and added Krylov/Chebyshev expm-action paths. This suite is the
//! differential gate that lets those kernels evolve safely:
//!
//! * the blocked GEMM must be **bitwise** equal to the textbook i-k-j
//!   reference, for every shape and every rayon pool width — the
//!   determinism contract every verdict-certification test leans on;
//! * `symmul` must be bitwise equal to `matmul(S, S)` on symmetric input;
//! * the Lanczos and Chebyshev expm-action paths must agree with the dense
//!   `exp_dot_exact` reference within their documented tolerance (the
//!   `1e-9` kernel floor plus factorization slack — we assert `1e-5`
//!   relative) on random factorized and sparse instances, and be bitwise
//!   pool-width invariant.
//!
//! CI runs this file in the fail-fast tier under both entries of the
//! `RAYON_NUM_THREADS ∈ {1, 4}` matrix; the explicit `run_with_threads`
//! comparisons below additionally pin the two pool widths against each
//! other inside one process.

use proptest::prelude::*;
use psdp_expdot::{exp_dot_exact, Engine, EngineKind};
use psdp_linalg::{
    chebyshev_exp_block, expm_action_lanczos, lambda_max_upper_bound, matmul, symmul, Mat,
};
use psdp_parallel::run_with_threads;
use psdp_test_support::{arb_factorized_instance, arb_sparse_graph_instance};

/// Textbook i-k-j scalar reference kernel: per output element, terms are
/// added one at a time in increasing `k` order — the exact accumulation
/// order the blocked kernel contracts to preserve.
fn reference_matmul(a: &Mat, b: &Mat) -> Mat {
    let (m, k, n) = (a.nrows(), a.ncols(), b.ncols());
    let mut c = Mat::zeros(m, n);
    for i in 0..m {
        for kk in 0..k {
            let aik = a[(i, kk)];
            for j in 0..n {
                c[(i, j)] += aik * b[(kk, j)];
            }
        }
    }
    c
}

/// Deterministic pseudo-random matrix (no RNG: pure hash of indices+salt).
fn pseudo(m: usize, n: usize, salt: u64) -> Mat {
    Mat::from_fn(m, n, |i, j| {
        let h = (i as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add((j as u64).wrapping_mul(1442695040888963407))
            .wrapping_add(salt.wrapping_mul(2654435761));
        ((h >> 11) % 4000) as f64 / 1999.0 - 1.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocked GEMM ≡ reference, bitwise, across pool widths {1, 4}, over
    /// random shapes spanning every dispatch boundary (serial/parallel
    /// cutover, row-chunk size, k-panel size, unroll remainder).
    #[test]
    fn blocked_gemm_bitwise_equals_reference(
        m in 1usize..40,
        k in 1usize..80,
        n in 1usize..24,
        salt in 0u64..1000,
    ) {
        let a = pseudo(m, k, salt);
        let b = pseudo(k, n, salt.wrapping_add(1));
        let want = reference_matmul(&a, &b);
        let c1 = run_with_threads(1, || matmul(&a, &b));
        let c4 = run_with_threads(4, || matmul(&a, &b));
        prop_assert_eq!(c1.as_slice(), want.as_slice(), "pool=1 diverged from reference");
        prop_assert_eq!(c4.as_slice(), want.as_slice(), "pool=4 diverged from reference");
    }

    /// Symmetric-square kernel ≡ general GEMM, bitwise, on symmetric input,
    /// across pool widths.
    #[test]
    fn symmul_bitwise_equals_matmul(m in 1usize..48, salt in 0u64..1000) {
        let mut s = pseudo(m, m, salt);
        s.symmetrize();
        let want = matmul(&s, &s);
        let c1 = run_with_threads(1, || symmul(&s));
        let c4 = run_with_threads(4, || symmul(&s));
        prop_assert_eq!(c1.as_slice(), want.as_slice(), "pool=1 symmul diverged");
        prop_assert_eq!(c4.as_slice(), want.as_slice(), "pool=4 symmul diverged");
    }

    /// The expv engine vs the dense reference on random factorized
    /// instances: dots within the documented 1e-5 relative band (kernel
    /// floor 1e-9 + factorization slack), bitwise pool-width invariant.
    #[test]
    fn expv_engine_matches_exact_on_factorized(inst in arb_factorized_instance()) {
        assert_expv_matches_exact(&inst);
    }

    /// Same gate on random sparse (CSR edge-Laplacian) instances.
    #[test]
    fn expv_engine_matches_exact_on_sparse(inst in arb_sparse_graph_instance()) {
        assert_expv_matches_exact(&inst);
    }
}

fn assert_expv_matches_exact(inst: &psdp_core::PackingInstance) {
    let n = inst.n();
    // Deterministic dual point with spread-out weights.
    let x: Vec<f64> = (0..n).map(|i| 0.05 + 0.03 * (i % 5) as f64).collect();
    let mut phi = inst.weighted_sum(&x);
    phi.symmetrize();
    let kappa = lambda_max_upper_bound(&phi);

    let eng = Engine::new(EngineKind::Expv { eps: 0.2 }, inst.mats(), 7).unwrap();
    let out1 = run_with_threads(1, || eng.compute(&phi, kappa, inst.mats(), 3).unwrap());
    let out4 = run_with_threads(4, || eng.compute(&phi, kappa, inst.mats(), 3).unwrap());

    // Bitwise pool-width invariance of the full evaluation.
    assert_eq!(out1.tr_w.to_bits(), out4.tr_w.to_bits(), "trace diverged across pools");
    for (a, b) in out1.dots.iter().zip(&out4.dots) {
        assert_eq!(a.to_bits(), b.to_bits(), "a dot diverged across pools");
    }

    // Accuracy against the dense reference (documented tolerance).
    let scale = out1.log_scale.exp();
    for (i, a) in inst.mats().iter().enumerate() {
        let want = exp_dot_exact(&phi, a).unwrap();
        let got = out1.dots[i] * scale;
        assert!(
            (got - want).abs() <= 1e-5 * want.abs().max(1e-8),
            "dot {i}: expv {got} vs exact {want} (m={}, kappa={kappa})",
            inst.dim()
        );
    }
}

/// The two expm-action paths against the dense `expm` reference and each
/// other on a moderately conditioned PSD matrix, including the
/// time-stepping regime (κ > 16 forces multiple Lanczos substeps).
#[test]
fn lanczos_and_chebyshev_match_dense_expm() {
    for (m, kappa) in [(9usize, 2.0f64), (14, 8.0), (11, 24.0)] {
        let mut b = pseudo(m, m, m as u64);
        b.symmetrize();
        let eig = psdp_linalg::sym_eigen(&b).unwrap();
        b.add_diag(-eig.lambda_min().min(0.0) + 0.01);
        let lmax = psdp_linalg::sym_eigen(&b).unwrap().lambda_max();
        b.scale(kappa / lmax);

        let truth = psdp_linalg::expm(&b).unwrap();
        let x: Vec<f64> = (0..m).map(|i| ((i * 3 + 1) % 7) as f64 * 0.2 - 0.5).collect();
        let want = psdp_linalg::matvec(&truth, &x);
        let wnorm = psdp_linalg::vecops::norm2(&want);

        // Lanczos path.
        let lan = expm_action_lanczos(&b, &x, kappa, 1e-11).unwrap();
        assert!(lan.residual <= 1e-10, "m={m} kappa={kappa}: residual {}", lan.residual);
        for (i, &wi) in want.iter().enumerate() {
            let got = lan.log_norm.exp() * lan.v[i];
            assert!(
                (got - wi).abs() <= 1e-7 * wnorm,
                "lanczos m={m} kappa={kappa} entry {i}: {got} vs {wi}"
            );
        }

        // Chebyshev path (block of one column).
        let mut block = Mat::zeros(m, 1);
        block.set_col(0, &x);
        let applied = chebyshev_exp_block(&b, &block, kappa, 1e-11);
        assert!(applied.coeff_tail <= 1e-11, "tail {}", applied.coeff_tail);
        let cheb_scale = applied.log_scale.exp();
        for (i, &wi) in want.iter().enumerate() {
            let got = applied.y[(i, 0)] * cheb_scale;
            assert!(
                (got - wi).abs() <= 1e-6 * wnorm,
                "chebyshev m={m} kappa={kappa} entry {i}: {got} vs {wi}"
            );
        }
    }
}

/// Expm-action kernels are bitwise pool-width invariant (their only
/// parallelism is the operator application, which is).
#[test]
fn expm_action_bitwise_across_thread_counts() {
    let m = 72; // big enough that matvec/matmul take their parallel paths
    let mut b = pseudo(m, m, 5);
    b.symmetrize();
    b.add_diag(2.5);
    let x: Vec<f64> = (0..m).map(|i| ((i * 5 + 2) % 11) as f64 * 0.1 - 0.5).collect();
    let kappa = lambda_max_upper_bound(&b);

    let l1 = run_with_threads(1, || expm_action_lanczos(&b, &x, kappa, 1e-10).unwrap());
    let l4 = run_with_threads(4, || expm_action_lanczos(&b, &x, kappa, 1e-10).unwrap());
    assert_eq!(l1.log_norm.to_bits(), l4.log_norm.to_bits());
    assert_eq!(l1.matvecs, l4.matvecs);
    for (a, c) in l1.v.iter().zip(&l4.v) {
        assert_eq!(a.to_bits(), c.to_bits(), "lanczos vector diverged across pools");
    }

    let block = pseudo(m, 3, 9);
    let c1 = run_with_threads(1, || chebyshev_exp_block(&b, &block, kappa, 1e-10));
    let c4 = run_with_threads(4, || chebyshev_exp_block(&b, &block, kappa, 1e-10));
    assert_eq!(c1.degree, c4.degree);
    for (a, c) in c1.y.as_slice().iter().zip(c4.y.as_slice()) {
        assert_eq!(a.to_bits(), c.to_bits(), "chebyshev block diverged across pools");
    }
}

/// The Taylor engine's dense primal path squares `p(Φ/2)` through `symmul`;
/// this pins the squared block against the general GEMM on the engine's
/// actual (nearly-symmetric) input so the half-flops kernel cannot drift
/// from the semantics it replaced: `symmul(S) = S·Sᵀ`, which for the
/// engine's symmetrized usage equals `S·S` to working precision.
#[test]
fn symmul_tracks_general_gemm_on_taylor_blocks() {
    let m = 24;
    let mut phi = pseudo(m, m, 11);
    phi.symmetrize();
    phi.add_diag(1.5);
    let degree = psdp_linalg::taylor_degree(lambda_max_upper_bound(&phi) * 0.5, 0.05);
    let s = psdp_linalg::apply_exp_taylor_block(&phi.scaled(0.5), &Mat::identity(m), degree);
    let via_symmul = symmul(&s);
    let via_gemm = {
        let mut c = matmul(&s, &s.transpose());
        c.symmetrize();
        c
    };
    let scale = via_gemm.max_abs();
    for (a, b) in via_symmul.as_slice().iter().zip(via_gemm.as_slice()) {
        assert!((a - b).abs() <= 1e-12 * scale, "{a} vs {b}");
    }
}
