//! Differential testing of the mixed packing–covering SDP solver against
//! two independent oracles on diagonal embeddings:
//!
//! * **exact simplex** (`psdp_baselines::mixed_exact_threshold`) — the
//!   ground-truth threshold `t* = max{t : Px ≤ 1, Cx ≥ t·1}`; the mixed
//!   solver's certified bracket must contain it (its bounds are explicit
//!   witnesses, so a violation is a soundness bug, not slack),
//! * **the scalar Young solver** (`psdp_baselines::mixed_packing_covering`)
//!   — an independent width-independent implementation; verdicts at
//!   threshold 1 must agree wherever `t*` is comfortably away from 1.
//!
//! Every property is exercised at rayon pool sizes {1, 4} and the two
//! runs are compared **bitwise** — the mixed loop's reductions are
//! deterministic in shape, so thread count must not change a single bit
//! of the report (`tests/determinism.rs` holds the packing side to the
//! same bar, and CI runs the whole suite under a two-entry
//! `RAYON_NUM_THREADS` matrix).

use proptest::prelude::*;
use psdp_baselines::{mixed_packing_covering, MixedOutcome as LpOutcome};
use psdp_core::{
    solve_mixed, verify_mixed_feasible, verify_mixed_infeasible, MixedApproxOptions, MixedOutcome,
    MixedSolver,
};
use psdp_parallel::run_with_threads;
use psdp_test_support::{arb_mixed_diagonal, mixed_diagonal_case, MixedDiagonal};

/// Run the certified bisection at both pool sizes, assert the reports are
/// bitwise identical, and return one of them.
fn bisect_both_pools(case: &MixedDiagonal) -> psdp_core::MixedReport {
    let opts = MixedApproxOptions::practical(0.1);
    let r1 = run_with_threads(1, || solve_mixed(&case.inst, &opts).expect("solve"));
    let r4 = run_with_threads(4, || solve_mixed(&case.inst, &opts).expect("solve"));
    assert_eq!(r1.threshold_lower.to_bits(), r4.threshold_lower.to_bits(), "pool-dependent lo");
    assert_eq!(r1.threshold_upper.to_bits(), r4.threshold_upper.to_bits(), "pool-dependent hi");
    assert_eq!(r1.decision_calls, r4.decision_calls);
    assert_eq!(r1.total_iterations, r4.total_iterations);
    r1
}

/// Soundness of the certified bracket against exact simplex: the bracket
/// bounds are explicit re-verified witnesses, so `lo ≤ t* ≤ hi` must hold
/// up to floating-point noise regardless of convergence.
fn assert_bracket_sound(case: &MixedDiagonal, r: &psdp_core::MixedReport) {
    let ts = case.tstar;
    assert!(
        r.threshold_lower <= ts * (1.0 + 1e-6) + 1e-9,
        "certified lower bound {} exceeds exact t* = {ts}",
        r.threshold_lower
    );
    assert!(
        r.threshold_upper >= ts * (1.0 - 1e-6) - 1e-9,
        "certified upper bound {} undercuts exact t* = {ts}",
        r.threshold_upper
    );
    if let Some(p) = &r.best_point {
        let cert = verify_mixed_feasible(&case.inst, p, r.threshold_lower * (1.0 - 1e-9), 1e-7);
        assert!(cert.feasible, "lower-bound witness failed verify: {cert:?}");
    }
    if let Some(w) = &r.infeasibility_witness {
        let cert = verify_mixed_infeasible(&case.inst, w, 1e-7);
        assert!(cert.valid, "upper-bound witness failed verify: {cert:?}");
        assert!(
            cert.refuted_threshold >= ts * (1.0 - 1e-6) - 1e-9,
            "witness refutes {} below exact t* = {ts}",
            cert.refuted_threshold
        );
    }
}

/// Feasibility verdicts at threshold 1, ours vs the scalar Young solver,
/// with the wide margins both approximate solvers guarantee (their ε-slack
/// lives inside `(0.7, 1.4)`).
fn assert_verdicts_agree(case: &MixedDiagonal) {
    let ts = case.tstar;
    let solver = MixedSolver::builder(&case.inst)
        .options(MixedApproxOptions::practical(0.1).decision)
        .build()
        .expect("build");
    let ours = solver.session().solve(1.0).expect("decision");
    let lp = mixed_packing_covering(&case.pack_cols, &case.cover_cols, 0.1, 400_000);

    match &ours.outcome {
        MixedOutcome::Infeasible(c) => {
            // Our infeasibility certificate is unconditional: t* ≤ 1/margin.
            let v = verify_mixed_infeasible(&case.inst, c, 1e-7);
            assert!(v.valid, "σ=1 certificate failed verify: {v:?}");
            assert!(ts <= v.refuted_threshold * (1.0 + 1e-6), "refuted t* = {ts} incorrectly");
            assert!(ts < 1.4, "declared infeasible at σ=1 but t* = {ts}");
        }
        MixedOutcome::Feasible(f) => {
            // Measured coverage is a certified lower bound on t*.
            assert!(
                f.cover_lambda_min <= ts * (1.0 + 1e-6) + 1e-9,
                "measured coverage {} exceeds exact t* = {ts}",
                f.cover_lambda_min
            );
            if ts >= 1.4 {
                assert!(
                    f.cover_lambda_min >= 1.0 - 0.4,
                    "weak coverage {} on comfortably feasible t* = {ts}",
                    f.cover_lambda_min
                );
            }
        }
    }

    // Two-sided agreement at comfortable margins.
    if ts >= 1.4 {
        assert!(
            matches!(lp.outcome, LpOutcome::Feasible { .. }),
            "scalar solver declared infeasible at t* = {ts}"
        );
        assert!(
            !matches!(ours.outcome, MixedOutcome::Infeasible(_)),
            "mixed SDP solver declared infeasible at t* = {ts}"
        );
    }
    if ts <= 0.7 {
        assert!(
            matches!(lp.outcome, LpOutcome::Infeasible { .. }),
            "scalar solver declared feasible at t* = {ts}"
        );
        assert!(
            matches!(ours.outcome, MixedOutcome::Infeasible(_)),
            "mixed SDP solver failed to certify infeasibility at t* = {ts}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random diagonal mixed instances: certified bracket contains the
    /// exact simplex threshold, bitwise across pool sizes {1, 4}.
    #[test]
    fn bracket_contains_simplex_threshold(case in arb_mixed_diagonal()) {
        let r = bisect_both_pools(&case);
        assert_bracket_sound(&case, &r);
    }

    /// Random diagonal mixed instances: σ=1 feasibility verdicts agree
    /// with the scalar Young solver at comfortable margins, and every
    /// verdict's certificate is sound against exact simplex.
    #[test]
    fn verdicts_agree_with_scalar_solver(case in arb_mixed_diagonal()) {
        assert_verdicts_agree(&case);
    }
}

/// A fixed regression set (one comfortably feasible, one comfortably
/// infeasible, one near-critical) so the differential property also runs
/// deterministically without proptest's sampling.
#[test]
fn fixed_cases_regression() {
    for seed in [1u64, 7, 23, 40] {
        let case = mixed_diagonal_case(5, 3, 4, 0.6, seed);
        if !case.tstar.is_finite() {
            continue;
        }
        let r = bisect_both_pools(&case);
        assert_bracket_sound(&case, &r);
        assert_verdicts_agree(&case);
    }
}
