//! Cross-validation: independent solvers must agree wherever their domains
//! overlap. This is the strongest correctness evidence the reproduction has
//! — four codepaths (matrix MMW solver, scalar Young LP, simplex, geometric
//! n≤2 search) with no shared numerics.

use psdp_baselines::{
    ak_decision, exact_commuting_opt, exact_diagonal_opt, exact_small_opt, young_packing_lp,
    AkOutcome,
};
use psdp_core::{
    decision_psdp, solve_packing, ApproxOptions, DecisionOptions, Outcome, PackingInstance,
};
use psdp_test_support::diag_lp_with_columns;
use psdp_workloads::commuting_family;

/// SDP solver vs simplex vs Young LP on random diagonal instances.
#[test]
fn diagonal_three_way_agreement() {
    for seed in 1..=5u64 {
        let (inst, cols) = diag_lp_with_columns(8, 6, 0.6, seed);

        let exact = exact_diagonal_opt(&inst).unwrap();
        let eps = 0.1;
        let sdp = solve_packing(&inst, &ApproxOptions::practical(eps)).unwrap();
        let lp = young_packing_lp(&cols, eps, 400_000);

        assert!(
            sdp.value_lower <= exact * (1.0 + 1e-9) && sdp.value_upper >= exact * (1.0 - 1e-9),
            "seed {seed}: SDP bracket [{}, {}] misses exact {exact}",
            sdp.value_lower,
            sdp.value_upper
        );
        assert!(
            lp.value >= exact * (1.0 - 3.0 * eps) && lp.value <= exact * (1.0 + 1e-9),
            "seed {seed}: Young LP {} vs exact {exact}",
            lp.value
        );
    }
}

/// SDP solver vs the eigenbasis LP on commuting families.
#[test]
fn commuting_families_match_eigenvalue_lp() {
    for seed in [3u64, 7, 11] {
        let fam = commuting_family(7, 4, 0.25, seed);
        let inst = PackingInstance::new(fam.mats.clone()).unwrap();
        let exact = exact_commuting_opt(&inst, &fam.u).unwrap();
        let r = solve_packing(&inst, &ApproxOptions::practical(0.1)).unwrap();
        assert!(
            r.value_lower <= exact * (1.0 + 1e-9) && r.value_upper >= exact * (1.0 - 1e-9),
            "seed {seed}: bracket [{}, {}] vs exact {exact}",
            r.value_lower,
            r.value_upper
        );
    }
}

/// SDP solver vs the geometric reference on 2-constraint dense instances.
#[test]
fn two_constraint_geometric_agreement() {
    for seed in [2u64, 8] {
        let fam = commuting_family(5, 2, 0.0, seed);
        let inst = PackingInstance::new(fam.mats.clone()).unwrap();
        let exact = exact_small_opt(&inst).unwrap();
        let r = solve_packing(&inst, &ApproxOptions::practical(0.1)).unwrap();
        assert!(
            r.value_lower <= exact * (1.0 + 1e-6) && r.value_upper >= exact * (1.0 - 1e-6),
            "seed {seed}: [{}, {}] vs geometric {exact}",
            r.value_lower,
            r.value_upper
        );
    }
}

/// Our width-independent solver and the width-dependent baseline certify
/// the same side of the same decision instances.
#[test]
fn ours_and_width_dependent_agree_on_side() {
    // Clearly feasible (OPT = 2) and clearly infeasible (OPT = 1/4).
    let feasible = PackingInstance::new(vec![
        psdp_sparse::PsdMatrix::Diagonal(vec![1.0, 0.0]),
        psdp_sparse::PsdMatrix::Diagonal(vec![0.0, 1.0]),
    ])
    .unwrap();
    let infeasible =
        PackingInstance::new(vec![psdp_sparse::PsdMatrix::Diagonal(vec![4.0, 4.0])]).unwrap();

    let ours_f = decision_psdp(&feasible, &DecisionOptions::practical(0.2)).unwrap();
    let ak_f = ak_decision(&feasible, 0.2, 100_000).unwrap();
    assert!(matches!(ours_f.outcome, Outcome::Dual(_)));
    assert!(matches!(ak_f.outcome, AkOutcome::Dual { .. }));

    let ours_i = decision_psdp(&infeasible, &DecisionOptions::practical(0.2)).unwrap();
    let ak_i = ak_decision(&infeasible, 0.2, 100_000).unwrap();
    assert!(matches!(ours_i.outcome, Outcome::Primal(_)));
    assert!(matches!(ak_i.outcome, AkOutcome::Primal { .. }));
}

/// The matrix solver on a diagonal instance must match the scalar Hedge
/// trajectory structurally: same K, same alpha, comparable iteration counts
/// (both are instances of the identical update rule).
#[test]
fn diagonal_iteration_counts_comparable() {
    let (inst, cols) = diag_lp_with_columns(6, 5, 0.7, 42);
    let eps = 0.2;

    // Run both *decision* procedures on the same (unscaled) instance.
    let sdp = decision_psdp(&inst, &DecisionOptions::practical(eps)).unwrap();
    let (_, lp_iters) = psdp_baselines::young_decision(&cols, eps, 400_000);

    let a = sdp.stats.iterations as f64;
    let b = lp_iters as f64;
    let ratio = (a / b).max(b / a);
    assert!(ratio < 3.0, "iteration counts diverged: sdp {a} vs lp {b}");
}
