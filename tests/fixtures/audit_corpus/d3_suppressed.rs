pub struct Stats {
    pub wall_ms: f64,
}

pub fn solve_with_telemetry() -> Stats {
    // psdp-audit: allow(D3, reason = "wall_ms is write-only telemetry; iteration logic never reads it")
    let start = std::time::Instant::now();
    work();
    Stats { wall_ms: start.elapsed().as_secs_f64() * 1e3 }
}

fn work() {}
