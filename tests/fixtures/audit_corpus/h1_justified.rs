pub fn first_checked_then_unchecked(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    // SAFETY: the emptiness check above guarantees index 0 is in bounds.
    Some(unsafe { *xs.get_unchecked(0) })
}
