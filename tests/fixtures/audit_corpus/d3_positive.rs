use std::time::Instant;

pub fn timed_step(budget_ms: u64) -> bool {
    let start = Instant::now();
    work();
    start.elapsed().as_millis() as u64 <= budget_ms
}

pub fn ambient_seed() -> u64 {
    let mut rng = rand::thread_rng();
    rand::Rng::gen(&mut rng)
}

pub fn ambient_config() -> Option<String> {
    std::env::var("PSDP_EPS").ok()
}

fn work() {}
