//! `env` as a plain identifier, clock types in prose, and clocks in test
//! code — none may fire D3.

/// Wall-clock types like `Instant` are discussed here, not used.
pub fn step(env: f64) -> f64 {
    let scaled = env * 2.0;
    scaled + 1.0
}

pub fn describe() -> &'static str {
    "SystemTime and thread_rng are just words in this string"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_time_things() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_secs() < 3600);
    }
}
