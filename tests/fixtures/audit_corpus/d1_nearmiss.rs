//! Mentions `HashMap` in prose, strings, and test code only — none of
//! which may fire D1.

/// Unlike a HashMap, iteration order here is the insertion order.
pub fn describe() -> &'static str {
    "not a HashMap, just a string that says HashMap"
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_helpers_may_hash() {
        let mut m = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m[&1], 2);
    }
}
