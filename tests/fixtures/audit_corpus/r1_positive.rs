pub fn parse_header(toks: &[&str]) -> u32 {
    let dim = toks[1];
    dim.parse().unwrap()
}

pub fn dispatch(cmd: &str) -> &'static str {
    match cmd {
        "solve" => "ok",
        other => unreachable!("command {other} was validated upstream"),
    }
}

pub fn field(v: Option<&str>) -> String {
    v.expect("field present").to_string()
}
