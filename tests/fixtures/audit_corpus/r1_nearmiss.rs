//! Request-path look-alikes that must not fire R1: slice patterns, range
//! slicing, checked access, a parser method named `expect`, attributes,
//! and panics confined to test code.

pub struct Parser {
    pos: usize,
}

impl Parser {
    /// Same name as `Option::expect`, but a byte argument — a parser
    /// primitive that returns a typed error.
    pub fn expect(&mut self, b: u8) -> Result<(), String> {
        self.pos += 1;
        if b == b'"' {
            Ok(())
        } else {
            Err("expected quote".to_string())
        }
    }
}

pub fn pair(parts: &[&str]) -> Option<(String, String)> {
    let [a, b] = parts else { return None };
    Some((a.to_string(), b.to_string()))
}

pub fn window(bytes: &[u8], pos: usize) -> &[u8] {
    &bytes[pos..pos + 4]
}

pub fn third(toks: &[&str]) -> Result<&str, String> {
    toks.get(2).copied().ok_or_else(|| "missing token".to_string())
}

#[derive(Debug, Clone)]
pub struct Header {
    pub dims: [u32; 3],
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u8> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
