// psdp-audit: allow(D1, reason = "keys are collected and sorted before any iteration")
use std::collections::HashSet;

pub fn distinct(xs: &[u32]) -> usize {
    // psdp-audit: allow(D1, reason = "membership-only use; iteration never happens")
    let s: HashSet<u32> = xs.iter().copied().collect();
    s.len()
}
