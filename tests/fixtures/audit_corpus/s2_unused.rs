// psdp-audit: allow(D1, reason = "there is no hash container here at all")
pub fn add(a: u32, b: u32) -> u32 {
    a + b
}
