use rayon::prelude::*;

/// Sequential reduction: associates left-to-right, always.
pub fn norm1_seq(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x.abs()).sum()
}

/// The `.sum()` is *inside* the per-item closure (each row reduced
/// sequentially); the parallel chain itself ends in an order-preserving
/// `collect`.
pub fn row_norms(rows: &[Vec<f64>]) -> Vec<f64> {
    rows.par_iter().map(|r| r.iter().map(|x| x.abs()).sum()).collect()
}

/// A reducer in the *next statement* is not part of the parallel chain.
pub fn two_step(xs: &[f64]) -> f64 {
    let mapped: Vec<f64> = xs.par_iter().map(|x| x * 2.0).collect();
    mapped.iter().sum()
}
