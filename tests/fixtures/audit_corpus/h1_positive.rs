pub fn first_unchecked(xs: &[f64]) -> f64 {
    unsafe { *xs.get_unchecked(0) }
}
