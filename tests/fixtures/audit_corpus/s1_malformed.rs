// psdp-audit: allow(D1)
use std::collections::HashMap;

pub fn m() -> HashMap<u8, u8> {
    // psdp-audit: allow(D1, reason = "")
    HashMap::new()
}
