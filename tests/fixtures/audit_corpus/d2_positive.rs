use rayon::prelude::*;

pub fn norm1(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x.abs()).sum()
}

pub fn dot(xs: &[f64], ys: &[f64]) -> f64 {
    xs.par_iter().zip(ys).map(|(a, b)| a * b).reduce(|| 0.0, |a, b| a + b)
}
