pub fn checked_write(row: &mut [f64], c: usize, v: f64) {
    if c >= row.len() {
        return;
    }
    // psdp-audit: allow(R1, reason = "c < row.len() by the guard two lines above")
    row[c] = v;
}
